// Package clustering implements the classical clustering metric for
// space-filling curves (Jagadish 1990; Moon, Jagadish, Faloutsos &
// Saltz 2001) that the paper contrasts with ANNS and ACD: the number
// of clusters — maximal runs of consecutive curve positions — needed
// to cover a rectilinear range query. The better the curve, the fewer
// clusters an average query touches. Under this metric the Hilbert
// curve is the traditional winner, the counterpoint to its ANNS loss
// in §V of the paper.
package clustering

import (
	"fmt"
	"sort"

	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

// Rect is a rectilinear query region: cells with Lo.X <= x <= Hi.X and
// Lo.Y <= y <= Hi.Y.
type Rect struct {
	Lo, Hi geom.Point
}

// Valid reports whether the rectangle is non-empty and lies on the
// grid of the given order.
func (r Rect) Valid(order uint) bool {
	side := geom.Side(order)
	return r.Lo.X <= r.Hi.X && r.Lo.Y <= r.Hi.Y && r.Hi.X < side && r.Hi.Y < side
}

// Cells returns the number of cells in the rectangle.
func (r Rect) Cells() uint64 {
	return uint64(r.Hi.X-r.Lo.X+1) * uint64(r.Hi.Y-r.Lo.Y+1)
}

// Clusters returns the number of clusters of the query region under
// the curve: the number of maximal runs of consecutive curve indices
// covered by the rectangle. A perfect ordering yields 1.
func Clusters(c sfc.Curve, order uint, r Rect) int {
	if !r.Valid(order) {
		panic(fmt.Sprintf("clustering: invalid rect %v-%v at order %d", r.Lo, r.Hi, order))
	}
	idx := make([]uint64, 0, r.Cells())
	for y := r.Lo.Y; y <= r.Hi.Y; y++ {
		for x := r.Lo.X; x <= r.Hi.X; x++ {
			idx = append(idx, c.Index(order, geom.Pt(x, y)))
		}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	clusters := 1
	for i := 1; i < len(idx); i++ {
		if idx[i] != idx[i-1]+1 {
			clusters++
		}
	}
	return clusters
}

// RandomQuery draws a uniformly random axis-aligned square query of
// the given side length.
func RandomQuery(r *rng.Rand, order uint, querySide uint32) Rect {
	side := geom.Side(order)
	if querySide < 1 || querySide > side {
		panic(fmt.Sprintf("clustering: query side %d outside grid %d", querySide, side))
	}
	x := r.Uint32n(side - querySide + 1)
	y := r.Uint32n(side - querySide + 1)
	return Rect{Lo: geom.Pt(x, y), Hi: geom.Pt(x+querySide-1, y+querySide-1)}
}

// AverageClusters estimates the expected cluster count of random
// square queries of the given side, over the given number of trials.
func AverageClusters(c sfc.Curve, order uint, querySide uint32, trials int, r *rng.Rand) float64 {
	if trials < 1 {
		panic("clustering: need at least one trial")
	}
	sum := 0
	for i := 0; i < trials; i++ {
		sum += Clusters(c, order, RandomQuery(r, order, querySide))
	}
	return float64(sum) / float64(trials)
}

// RandomRectQuery draws a uniformly random axis-aligned rectangle of
// the given width and height. Elongated queries expose orderings that
// square queries hide: an s x s window is exactly s row-runs under
// row-major (tying Hilbert), but a wide 1 x w window is w runs under
// row-major and far fewer under recursive curves.
func RandomRectQuery(r *rng.Rand, order uint, width, height uint32) Rect {
	side := geom.Side(order)
	if width < 1 || height < 1 || width > side || height > side {
		panic(fmt.Sprintf("clustering: rect %dx%d outside grid %d", width, height, side))
	}
	x := r.Uint32n(side - width + 1)
	y := r.Uint32n(side - height + 1)
	return Rect{Lo: geom.Pt(x, y), Hi: geom.Pt(x+width-1, y+height-1)}
}

// AverageClustersRect estimates the expected cluster count of random
// width x height queries.
func AverageClustersRect(c sfc.Curve, order uint, width, height uint32, trials int, r *rng.Rand) float64 {
	if trials < 1 {
		panic("clustering: need at least one trial")
	}
	sum := 0
	for i := 0; i < trials; i++ {
		sum += Clusters(c, order, RandomRectQuery(r, order, width, height))
	}
	return float64(sum) / float64(trials)
}

// ExactAverageClusters computes the exact expected cluster count over
// all positions of a querySide x querySide window (feasible for small
// grids; used to validate the Monte Carlo estimator).
func ExactAverageClusters(c sfc.Curve, order uint, querySide uint32) float64 {
	side := geom.Side(order)
	if querySide < 1 || querySide > side {
		panic("clustering: query side outside grid")
	}
	sum := 0
	n := 0
	for y := uint32(0); y+querySide <= side; y++ {
		for x := uint32(0); x+querySide <= side; x++ {
			sum += Clusters(c, order, Rect{
				Lo: geom.Pt(x, y),
				Hi: geom.Pt(x+querySide-1, y+querySide-1),
			})
			n++
		}
	}
	return float64(sum) / float64(n)
}
