package obs

import (
	"context"
	"testing"
	"time"
)

// findPhase walks a phase forest for a name at any depth.
func findPhase(spans []PhaseSnapshot, name string) *PhaseSnapshot {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if p := findPhase(spans[i].Children, name); p != nil {
			return p
		}
	}
	return nil
}

func TestTraceLifecycle(t *testing.T) {
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr := NewTrace("abc123", "POST /v1/experiments/table12", start)
	if tr.ID() != "abc123" || tr.Name() != "POST /v1/experiments/table12" {
		t.Fatalf("identity = %q %q", tr.ID(), tr.Name())
	}
	if !tr.StartTime().Equal(start) {
		t.Errorf("start = %v", tr.StartTime())
	}
	if _, _, ok := tr.Finished(); ok {
		t.Fatal("fresh trace reports finished")
	}

	tr.Annotate("cache", "miss")
	tr.Annotate("cache", "hit") // last write wins
	tr.Annotate("experiment", "table12")

	sp := tr.StartSpan("cache.lookup")
	sp.End()

	live := tr.Snapshot(start.Add(50 * time.Millisecond))
	if live.Complete {
		t.Error("live snapshot marked complete")
	}
	if live.DurationNs != (50 * time.Millisecond).Nanoseconds() {
		t.Errorf("live duration = %d", live.DurationNs)
	}

	tr.Finish(200, start.Add(100*time.Millisecond))
	tr.Finish(500, start.Add(9*time.Hour)) // idempotent: first call wins
	status, d, ok := tr.Finished()
	if !ok || status != 200 || d != 100*time.Millisecond {
		t.Fatalf("Finished() = %d %v %v", status, d, ok)
	}

	snap := tr.Snapshot(start.Add(9 * time.Hour))
	if !snap.Complete || snap.Status != 200 {
		t.Errorf("snapshot complete/status = %v/%d", snap.Complete, snap.Status)
	}
	if snap.DurationNs != (100 * time.Millisecond).Nanoseconds() {
		t.Errorf("frozen duration = %d, want 100ms", snap.DurationNs)
	}
	if snap.Attrs["cache"] != "hit" || snap.Attrs["experiment"] != "table12" {
		t.Errorf("attrs = %v", snap.Attrs)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "request" {
		t.Fatalf("span tree root = %+v", snap.Spans)
	}
	if findPhase(snap.Spans, "cache.lookup") == nil {
		t.Error("cache.lookup span missing from tree")
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Name() != "" || tr.Root() != nil || tr.Attrs() != nil {
		t.Error("nil trace accessors returned non-zero values")
	}
	tr.Annotate("k", "v")
	tr.Finish(200, time.Now())
	if _, _, ok := tr.Finished(); ok {
		t.Error("nil trace reports finished")
	}
	sp := tr.StartSpan("x") // nil span: End/Annotate no-op
	sp.Annotate("k", "v")
	sp.End()
	if s := tr.Snapshot(time.Now()); s.ID != "" {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestTraceContext(t *testing.T) {
	tr := NewTrace("id1", "GET /", time.Now())
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Error("TraceFrom did not return the stored trace")
	}
	if TraceFrom(context.Background()) != nil {
		t.Error("TraceFrom on an empty context is not nil")
	}
}

// TestAttachRoutesPackageStartSpan pins the load-bearing wiring: a
// goroutine attached to a span of a request-scoped trace has its
// package-level StartSpan calls land in that trace, not in the default
// tracer, and detach restores default routing.
func TestAttachRoutesPackageStartSpan(t *testing.T) {
	tr := NewTrace("bind1", "POST /x", time.Now())
	const inside, after = "phase.inside.binding", "phase.after.detach"
	done := make(chan struct{})
	go func() {
		defer close(done)
		detach := tr.Root().Attach()
		sp := StartSpan(inside)
		sp.End()
		detach()
		sp = StartSpan(after)
		sp.End()
	}()
	<-done

	snap := tr.Snapshot(time.Now())
	in := findPhase(snap.Spans, inside)
	if in == nil {
		t.Fatalf("bound StartSpan did not land in the trace: %+v", snap.Spans)
	}
	if in.Calls != 1 {
		t.Errorf("bound phase calls = %d", in.Calls)
	}
	if findPhase(snap.Spans, after) != nil {
		t.Error("StartSpan after detach still landed in the trace")
	}
	if findPhase(DefaultTracer().Snapshot(), inside) != nil {
		t.Error("bound StartSpan also landed in the default tracer")
	}
	if findPhase(DefaultTracer().Snapshot(), after) == nil {
		t.Error("StartSpan after detach did not return to the default tracer")
	}
}

// TestAttachNesting: workers attached to a mid-tree span of a bound
// tracer nest their package-level phases under that span (the sweep
// pattern, one level deeper than the root).
func TestAttachNesting(t *testing.T) {
	tr := NewTrace("bind2", "POST /x", time.Now())
	done := make(chan struct{})
	go func() {
		defer close(done)
		detach := tr.Root().Attach()
		defer detach()
		sweep := StartSpan("sweep")
		inner := make(chan struct{})
		go func() {
			defer close(inner)
			d := sweep.Attach()
			defer d()
			StartSpan("cell.work").End()
			StartSpan("cell.work").End()
		}()
		<-inner
		sweep.End()
	}()
	<-done

	snap := tr.Snapshot(time.Now())
	sweep := findPhase(snap.Spans, "sweep")
	if sweep == nil {
		t.Fatalf("sweep span missing: %+v", snap.Spans)
	}
	work := findPhase(sweep.Children, "cell.work")
	if work == nil || work.Calls != 2 {
		t.Fatalf("cell.work under sweep = %+v, want 2 merged calls", work)
	}
}

func TestMarkActive(t *testing.T) {
	// Unbound goroutine: no-op, nothing lands anywhere new.
	MarkActive("mark.unbound")
	if findPhase(DefaultTracer().Snapshot(), "mark.unbound") != nil {
		t.Error("unbound MarkActive recorded a phase")
	}

	tr := NewTrace("mark1", "POST /x", time.Now())
	done := make(chan struct{})
	go func() {
		defer close(done)
		detach := tr.Root().Attach()
		defer detach()
		sp := StartSpan("compute")
		MarkActive("fault.serve.compute")
		MarkActive("fault.serve.compute")
		sp.End()
	}()
	<-done

	snap := tr.Snapshot(time.Now())
	compute := findPhase(snap.Spans, "compute")
	if compute == nil {
		t.Fatal("compute span missing")
	}
	mark := findPhase(compute.Children, "fault.serve.compute")
	if mark == nil {
		t.Fatal("MarkActive did not record under the open span")
	}
	if mark.Calls != 2 || mark.Ns != 0 {
		t.Errorf("mark calls/ns = %d/%d, want 2/0", mark.Calls, mark.Ns)
	}
}

func TestSpanAnnotate(t *testing.T) {
	tr := NewTrace("ann1", "POST /x", time.Now())
	sp := tr.StartSpan("sweep")
	sp.Annotate("cells", "64")
	sp.Annotate("cells", "128") // last write wins on merged phases
	sp.Annotate("workers", "4")
	sp.End()

	snap := tr.Snapshot(time.Now())
	sweep := findPhase(snap.Spans, "sweep")
	if sweep == nil {
		t.Fatal("sweep missing")
	}
	if sweep.Attrs["cells"] != "128" || sweep.Attrs["workers"] != "4" {
		t.Errorf("attrs = %v", sweep.Attrs)
	}
}
