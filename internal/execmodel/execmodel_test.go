package execmodel

import (
	"math"
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

func TestTallyBasics(t *testing.T) {
	ta := NewTally(3)
	ta.Message(0, 2)
	ta.Message(0, 0) // zero-hop: free
	ta.Message(1, 5)
	ta.AddWork(2, 7)
	if ta.Sends[0] != 1 || ta.Hops[0] != 2 {
		t.Fatalf("rank 0 tallies %d/%d", ta.Sends[0], ta.Hops[0])
	}
	if ta.Sends[1] != 1 || ta.Hops[1] != 5 || ta.Work[2] != 7 {
		t.Fatalf("tallies %+v", ta)
	}
	ms, err := ta.Makespan(CostParams{Alpha: 1, Beta: 1, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1: 1 + 5 = 6; rank 2: 7.
	if ms != 7 {
		t.Fatalf("makespan %f, want 7", ms)
	}
	tot, err := ta.TotalCost(CostParams{Alpha: 1, Beta: 1, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tot != 1+2+1+5+7 {
		t.Fatalf("total %f", tot)
	}
}

func TestCostParamsValidation(t *testing.T) {
	ta := NewTally(1)
	if _, err := ta.Makespan(CostParams{Alpha: -1}); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := ta.TotalCost(CostParams{Beta: -1}); err == nil {
		t.Error("negative beta accepted")
	}
	if err := DefaultCost.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCollectNFIConsistentWithACD(t *testing.T) {
	// Total hops in the tally equal the ACD accumulator's Sum; work
	// units equal its Count.
	const order = 6
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(1), order, 400)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 64)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewTorus(3, sfc.Hilbert)
	opts := fmmmodel.NFIOptions{Radius: 1, Metric: geom.MetricChebyshev}
	tally := CollectNFI(a, topo, opts)
	acc := fmmmodel.NFI(a, topo, opts)
	var hops, work uint64
	for p := range tally.Hops {
		hops += tally.Hops[p]
		work += tally.Work[p]
	}
	if hops != acc.Sum {
		t.Fatalf("tally hops %d != ACD sum %d", hops, acc.Sum)
	}
	if work != acc.Count {
		t.Fatalf("tally work %d != ACD count %d", work, acc.Count)
	}
}

func TestCollectFFIConsistentWithACD(t *testing.T) {
	const order = 5
	pts, err := dist.SampleUnique(dist.Exponential, rng.New(2), order, 300)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Morton, order, 16)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewTorus(2, sfc.Morton)
	tally := CollectFFI(a, topo)
	acc := fmmmodel.FFI(a, topo, fmmmodel.FFIOptions{}).Total()
	var hops uint64
	for p := range tally.Hops {
		hops += tally.Hops[p]
	}
	if hops != acc.Sum {
		t.Fatalf("tally hops %d != FFI sum %d", hops, acc.Sum)
	}
}

// TestACDOrderingPredictsMakespan is the validation claim: ranking the
// curves by ACD gives the same ranking as the modeled execution time,
// for communication-dominated cost parameters.
func TestACDOrderingPredictsMakespan(t *testing.T) {
	const order, procOrder = 8, 4
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(3), order, 4000)
	if err != nil {
		t.Fatal(err)
	}
	type score struct {
		name     string
		acdVal   float64
		makespan float64
	}
	var scores []score
	for _, curve := range sfc.All() {
		a, err := acd.Assign(pts, curve, order, 1<<(2*procOrder))
		if err != nil {
			t.Fatal(err)
		}
		topo := topology.NewTorus(procOrder, curve)
		opts := fmmmodel.NFIOptions{Radius: 1, Metric: geom.MetricChebyshev}
		acc := fmmmodel.NFI(a, topo, opts)
		tally := CollectNFI(a, topo, opts)
		ms, err := tally.Makespan(CostParams{Alpha: 1, Beta: 0.5, Gamma: 0})
		if err != nil {
			t.Fatal(err)
		}
		scores = append(scores, score{curve.Name(), acc.ACD(), ms})
	}
	// Hilbert must win both; rowmajor must lose both.
	best, worst := scores[0], scores[0]
	for _, s := range scores {
		if s.acdVal < best.acdVal {
			best = s
		}
		if s.acdVal > worst.acdVal {
			worst = s
		}
	}
	if best.name != "hilbert" || worst.name != "rowmajor" {
		t.Fatalf("unexpected ACD extremes: best %s worst %s", best.name, worst.name)
	}
	// The makespan is a max statistic, so curves with near-tied ACDs
	// (hilbert/morton/gray here) may swap by a few percent — that gap
	// is exactly the contention/imbalance information the ACD does not
	// carry. The validation claim is about separated curves: whenever
	// one curve's ACD is at least 2x another's, the modeled makespans
	// must order the same way.
	for i := range scores {
		for j := range scores {
			if scores[i].acdVal*2 < scores[j].acdVal && scores[i].makespan >= scores[j].makespan {
				t.Errorf("ACD and makespan orderings disagree: %s(acd %f, T %f) vs %s(acd %f, T %f)",
					scores[i].name, scores[i].acdVal, scores[i].makespan,
					scores[j].name, scores[j].acdVal, scores[j].makespan)
			}
		}
	}
	// And near-ties stay near: any makespan inversion among close-ACD
	// curves is bounded.
	for i := range scores {
		for j := range scores {
			if scores[i].acdVal < scores[j].acdVal && scores[i].makespan > scores[j].makespan {
				if math.Abs(scores[i].makespan-scores[j].makespan) > 0.2*scores[j].makespan {
					t.Errorf("large makespan inversion between %s and %s", scores[i].name, scores[j].name)
				}
			}
		}
	}
}

func TestWorkOnlyMakespanIgnoresPlacement(t *testing.T) {
	// With Gamma-only costs, the makespan is the work imbalance and
	// placement does not matter: hilbert and rowmajor tie (both
	// count-balanced with the same work profile summed per chunk size).
	const order = 6
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(4), order, 512)
	if err != nil {
		t.Fatal(err)
	}
	opts := fmmmodel.NFIOptions{Radius: 1, Metric: geom.MetricChebyshev}
	ms := map[string]float64{}
	for _, curve := range []sfc.Curve{sfc.Hilbert, sfc.RowMajor} {
		a, err := acd.Assign(pts, curve, order, 16)
		if err != nil {
			t.Fatal(err)
		}
		topo := topology.NewTorus(2, curve)
		tally := CollectNFI(a, topo, opts)
		v, err := tally.Makespan(CostParams{Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		ms[curve.Name()] = v
	}
	// Not asserting exact equality (work depends on which particles
	// land in which chunk), but the ratio must be mild compared to the
	// communication-term gap (which is ~10x).
	r := ms["rowmajor"] / ms["hilbert"]
	if r > 1.5 || r < 0.67 {
		t.Errorf("work-only makespans differ unexpectedly: %v", ms)
	}
}
