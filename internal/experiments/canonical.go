package experiments

import "fmt"

// ResultSchemaVersion identifies the result encoding the serving layer
// caches. It participates in every cache key, so bumping it invalidates
// all previously cached results. Bump whenever a result struct's JSON
// layout changes or a runner's output changes for equal Params.
const ResultSchemaVersion = "sfcacd/results/v1"

// CanonicalKey returns the canonical cache identity of p: a stable,
// self-describing encoding whose bytes never change for equal
// parameter values. The field order is fixed by this function, not by
// the struct layout, so reordering Params fields cannot silently
// change cache keys; TestCanonicalKeyPinned pins the exact bytes and
// TestCanonicalKeyCoversParams fails when Params gains a field this
// encoding does not account for.
//
// Workers and NFIEngine are deliberately excluded: results are
// identical for any worker count and for either neighbor engine
// (documented invariants, enforced by the differential tests), so runs
// that differ only in parallelism or engine share one cache entry.
func (p Params) CanonicalKey() string {
	return fmt.Sprintf("params/v1:n=%d,k=%d,po=%d,r=%d,t=%d,s=%d",
		p.Particles, p.Order, p.ProcOrder, p.Radius, p.Trials, p.Seed)
}
