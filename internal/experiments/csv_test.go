package experiments

import (
	"context"
	"sfcacd/internal/keynav"
	"strings"
	"testing"
)

func countLines(s string) int {
	return len(strings.Split(strings.TrimSpace(s), "\n"))
}

func TestTable12CSV(t *testing.T) {
	res, err := RunTable12(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res[0].WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	// Header + 16 combos x 2 families.
	if got := countLines(b.String()); got != 1+32 {
		t.Fatalf("%d lines", got)
	}
	if !strings.HasPrefix(b.String(), "distribution,family,proc_curve,particle_curve,acd\n") {
		t.Errorf("header: %q", strings.SplitN(b.String(), "\n", 2)[0])
	}
}

func TestFig5CSV(t *testing.T) {
	res, err := RunFig5(context.Background(), 1, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	// Header + 4 curves x 3 orders.
	if got := countLines(b.String()); got != 1+12 {
		t.Fatalf("%d lines", got)
	}
	if !strings.Contains(b.String(), "8,rowmajor,1,4.5") {
		t.Errorf("missing known rowmajor row:\n%s", b.String())
	}
}

func TestFig6And7CSV(t *testing.T) {
	p := testParams
	res6, err := RunFig6(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res6.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+6*4*2 {
		t.Fatalf("fig6: %d lines", got)
	}
	res7, err := RunFig7(context.Background(), p, []uint{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := res7.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4*2*2 {
		t.Fatalf("fig7: %d lines", got)
	}
}

func TestStudyCSVEmitters(t *testing.T) {
	var b strings.Builder

	mt, err := RunMeshTorus(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4 {
		t.Fatalf("meshtorus: %d lines", got)
	}

	b.Reset()
	ss, err := RunSizeSweep(context.Background(), testParams, []int{500, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4*2*2 {
		t.Fatalf("sizesweep: %d lines", got)
	}

	b.Reset()
	lb, err := RunLoadBalance(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4 {
		t.Fatalf("loadbalance: %d lines", got)
	}

	b.Reset()
	em, err := RunExecModel(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := em.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4 {
		t.Fatalf("execmodel: %d lines", got)
	}

	b.Reset()
	me, err := RunMetrics(context.Background(), MetricsConfig{
		Params: testParams, MetricOrder: 5, QuerySide: 4, QueryTrials: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := me.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4 {
		t.Fatalf("metrics: %d lines", got)
	}

	b.Reset()
	co, err := RunContention(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4*2 {
		t.Fatalf("contention: %d lines", got)
	}
}

func TestRemainingCSVEmitters(t *testing.T) {
	var b strings.Builder

	rs, err := RunRadiusSweep(context.Background(), testParams, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4*2 {
		t.Fatalf("radius: %d lines", got)
	}

	b.Reset()
	cl, err := RunClustering(context.Background(), 6, []uint32{2, 4}, 100, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4*2 {
		t.Fatalf("clustering: %d lines", got)
	}

	b.Reset()
	p := testParams
	p.Particles = 500
	dy, err := RunDynamic(context.Background(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dy.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4*2*2 {
		t.Fatalf("dynamic: %d lines", got)
	}

	b.Reset()
	td := ThreeDDefault
	td.Particles = 500
	td.Order = 4
	td.ANNSOrder = 2
	t3, err := RunThreeD(context.Background(), td, 0, keynav.EngineTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := t3.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := countLines(b.String()); got != 1+4 {
		t.Fatalf("threed: %d lines", got)
	}
}
