package experiments

import (
	"context"
	"fmt"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom3"
	"sfcacd/internal/model3d"
	"sfcacd/internal/obs"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// ThreeDResult holds the 3D validation study (the paper's future-work
// item ii): NFI and FFI ACD per 3D curve on a 3D torus, plus the 3D
// ANNS, mirroring the 2D methodology on an octree decomposition.
type ThreeDResult struct {
	// Curves are the 3D curve names.
	Curves []string
	// NFI, FFI are ACD values per curve (same curve both roles).
	NFI, FFI []float64
	// ANNS is the 3D average nearest neighbor stretch (radius 1) per
	// curve, computed on the full grid of ANNSOrder.
	ANNS []float64
	// ANNSOrder is the resolution used for the ANNS column.
	ANNSOrder uint
}

// Matrix renders the study.
func (r ThreeDResult) Matrix() *tablefmt.Matrix {
	m := &tablefmt.Matrix{
		Title:  "3D validation: ACD on a 3D torus and 3D ANNS",
		Corner: "3D curve",
		Cols:   []string{"NFI ACD", "FFI ACD", fmt.Sprintf("ANNS (2^%d grid)", r.ANNSOrder)},
		Rows:   r.Curves,
	}
	for i := range r.Curves {
		m.Cells = append(m.Cells, []float64{r.NFI[i], r.FFI[i], r.ANNS[i]})
	}
	return m
}

// ThreeDParams configures the 3D study.
type ThreeDParams struct {
	// Particles is the input size.
	Particles int
	// Order is the cube resolution order.
	Order uint
	// ProcOrder fixes p = 8^ProcOrder on a 2^ProcOrder-sided torus.
	ProcOrder uint
	// Radius is the near-field radius.
	Radius int
	// ANNSOrder is the (small) grid order for the full-grid ANNS
	// column.
	ANNSOrder uint
	// Trials and Seed as in Params.
	Trials int
	Seed   uint64
}

// ThreeDDefault is a laptop-scale default for the 3D study.
var ThreeDDefault = ThreeDParams{
	Particles: 20000,
	Order:     6, // 64^3 cells
	ProcOrder: 2, // 64 processors on a 4x4x4 torus
	Radius:    1,
	ANNSOrder: 4, // 16^3 full grid
	Trials:    1,
	Seed:      2013,
}

// RunThreeD runs the 3D validation: uniform particles ordered by each
// 3D curve, distributed over a 3D torus placed with the same curve.
func RunThreeD(ctx context.Context, p ThreeDParams) (ThreeDResult, error) {
	if p.Particles < 1 || p.Trials < 1 {
		return ThreeDResult{}, fmt.Errorf("experiments: bad 3D params %+v", p)
	}
	if uint64(p.Particles) > geom3.Cells(p.Order) {
		return ThreeDResult{}, fmt.Errorf("experiments: %d particles exceed %d cells",
			p.Particles, geom3.Cells(p.Order))
	}
	curves := sfc.AllND(3)
	res := ThreeDResult{
		ANNSOrder: p.ANNSOrder,
		NFI:       make([]float64, len(curves)),
		FFI:       make([]float64, len(curves)),
		ANNS:      make([]float64, len(curves)),
	}
	for _, c := range curves {
		res.Curves = append(res.Curves, c.Name())
	}
	procs := 1 << (3 * p.ProcOrder)
	for trial := 0; trial < p.Trials; trial++ {
		sampling := obs.StartSpan("sampling")
		pts, err := dist.SampleUnique3(dist.Uniform3, rng.New(trialSeed(p.Seed, trial)), p.Order, p.Particles)
		sampling.End()
		if err != nil {
			return ThreeDResult{}, err
		}
		for c, curve := range curves {
			if err := ctx.Err(); err != nil {
				return ThreeDResult{}, err
			}
			a, err := model3d.Assign(pts, curve, p.Order, procs)
			if err != nil {
				return ThreeDResult{}, err
			}
			torus := topology.NewTorus3D(p.ProcOrder, curve)
			nfi := model3d.NFI(a, torus, model3d.NFIOptions{Radius: p.Radius})
			ffi := model3d.FFI(a, torus, 0)
			res.NFI[c] += nfi.ACD() / float64(p.Trials)
			res.FFI[c] += ffi.Total().ACD() / float64(p.Trials)
		}
	}
	for c, curve := range curves {
		mean, _ := model3d.ANNS3D(curve, p.ANNSOrder, 1)
		res.ANNS[c] = mean
	}
	return res, nil
}
