package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// sampleManifest builds a manifest the way cmd/acdbench does, with
// every nondeterministic input a real run would produce.
func sampleManifest() *Manifest {
	reg := NewRegistry()
	reg.GetCounter("sfc.encode").Add(123456)
	reg.GetCounter("sfc.encode.hilbert").Add(123456)
	reg.GetCounter("topology.distance.analytic").Add(789000)
	reg.GetGauge("acd.zero_hop_fraction").Set(0.25)
	h := reg.GetHistogram("acd.assign_ns", ExponentialBuckets(10000, 4, 4))
	h.Observe(2.5e4)
	h.Observe(9e5)

	tr := NewTracer()
	exp := tr.Start("table12")
	s := tr.Start("sampling")
	time.Sleep(time.Microsecond)
	s.End()
	a := tr.Start("assign")
	tr.Start("ordering").End()
	tr.Start("partitioning").End()
	a.End()
	tr.Start("accumulation.nfi").End()
	tr.Start("accumulation.ffi").End()
	exp.End()

	m := NewManifest("acdbench")
	m.AddExperiment("table12",
		map[string]any{"particles": 15625, "order": 8, "proc_order": 6, "radius": 1, "trials": 3, "seed": 2013},
		1500*time.Millisecond, tr.Take())
	m.ObserveMemStats()
	m.Metrics = reg.Snapshot()
	return m
}

// TestManifestGolden locks the deterministic manifest schema: stable
// field names, stable ordering, and no timing- or host-dependent
// fields once Deterministic() is applied. Regenerate with -update.
func TestManifestGolden(t *testing.T) {
	m := sampleManifest()
	m.Deterministic()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "manifest.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with go test -run Golden -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("manifest drifted from golden schema.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestManifestDeterministicTwice verifies two separately built
// manifests canonicalize to identical bytes — i.e. that
// Deterministic() strips every nondeterministic field.
func TestManifestDeterministicTwice(t *testing.T) {
	enc := func() []byte {
		m := sampleManifest()
		m.Deterministic()
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := enc()
	time.Sleep(2 * time.Millisecond)
	b := enc()
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic manifests differ:\n%s\nvs\n%s", a, b)
	}
}

func TestManifestNondeterministicFieldsPresent(t *testing.T) {
	// Before canonicalization the manifest must carry the run
	// evidence: environment, timestamps, memory peaks.
	m := sampleManifest()
	if m.CreatedAt == "" || m.Env == nil || m.Env.GoVersion == "" || m.Mem == nil {
		t.Fatalf("manifest missing environment fields: %+v", m)
	}
	if m.Mem.PeakHeapAllocBytes == 0 {
		t.Fatal("ObserveMemStats recorded no heap peak")
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if decoded["schema"] != ManifestSchema {
		t.Fatalf("schema = %v, want %v", decoded["schema"], ManifestSchema)
	}
}

func TestManifestWriteFile(t *testing.T) {
	m := sampleManifest()
	path := filepath.Join(t.TempDir(), "out.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Manifest
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("written manifest does not round-trip: %v", err)
	}
	if decoded.Schema != ManifestSchema || len(decoded.Experiments) != 1 {
		t.Fatalf("round-tripped manifest = %+v", decoded)
	}
}
