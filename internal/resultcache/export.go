package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// This file is the peer-transfer wire format: Export frames an entry
// for shipment to another fleet node, Import verifies and unpacks it.
// The on-disk entry format (disk.go) trusts the local filesystem plus
// the self-describing key; the wire format additionally carries an
// integrity checksum over the payload, so an entry truncated or
// corrupted in transit is rejected at the receiver instead of being
// cached and served.

// wireEntry is the transfer form of an Entry: the entry itself plus a
// checksum over its payload fields.
type wireEntry struct {
	Entry
	// Sum is the lowercase-hex sha256 of the entry's length-framed
	// payload (key, experiment, params, result, manifest).
	Sum string `json:"sum"`
}

// payloadSum hashes the entry's payload fields, length-framed like
// KeyFor so no two distinct field tuples can collide by concatenation.
func (e Entry) payloadSum() string {
	h := sha256.New()
	var frame [8]byte
	for _, part := range [][]byte{e.Key[:], []byte(e.Experiment), e.Params, e.Result, e.Manifest} {
		n := len(part)
		for i := 0; i < 8; i++ {
			frame[i] = byte(n >> (8 * i))
		}
		h.Write(frame[:])
		h.Write(part)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Export encodes e for transfer to a peer: the entry JSON plus its
// payload checksum. Import on the receiving side verifies both the
// checksum and the key the entry was requested under.
func Export(e Entry) ([]byte, error) {
	return json.Marshal(wireEntry{Entry: e, Sum: e.payloadSum()})
}

// Import decodes an Export-ed entry and verifies it: the payload
// checksum must match (transfer integrity) and the entry's
// self-describing key must equal the key it was fetched under (the
// peer answered the right question). Either failure returns an error
// and no entry.
func Import(data []byte, want Key) (Entry, error) {
	var w wireEntry
	if err := json.Unmarshal(data, &w); err != nil {
		return Entry{}, fmt.Errorf("resultcache: corrupt peer entry for %s: %w", want, err)
	}
	if sum := w.Entry.payloadSum(); sum != w.Sum {
		return Entry{}, fmt.Errorf("resultcache: peer entry %s checksum mismatch", want)
	}
	if w.Entry.Key != want {
		return Entry{}, fmt.Errorf("resultcache: peer entry %s answered for key %s", want, w.Entry.Key)
	}
	return w.Entry, nil
}

// ParseKey parses the lowercase-hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	if err := k.parseHex(s); err != nil {
		return Key{}, err
	}
	return k, nil
}
