package quadtree

import (
	"fmt"
	"slices"
	"sort"
	"testing"

	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

func benchPoints(n int, order uint) []geom.Point {
	r := rng.New(uint64(n))
	side := geom.Side(order)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Uint32n(side), r.Uint32n(side))
	}
	return pts
}

// BenchmarkCodeSort isolates the Morton-code sort that dominates
// BuildLinear/RebuildBalanced setup: slices.Sort (current) against the
// sort.Slice call it replaced.
func BenchmarkCodeSort(b *testing.B) {
	for _, n := range []int{1_000, 100_000} {
		pts := benchPoints(n, 10)
		codes := make([]uint64, n)
		for i, p := range pts {
			codes[i] = sfc.Morton.Index(10, p)
		}
		scratch := make([]uint64, n)
		b.Run(fmt.Sprintf("slices/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(scratch, codes)
				slices.Sort(scratch)
			}
		})
		b.Run(fmt.Sprintf("stdlib/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(scratch, codes)
				sort.Slice(scratch, func(a, c int) bool { return scratch[a] < scratch[c] })
			}
		})
	}
}

// BenchmarkBuildLinear covers the whole tree build, sort included.
func BenchmarkBuildLinear(b *testing.B) {
	for _, n := range []int{1_000, 100_000} {
		pts := benchPoints(n, 10)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BuildLinear(10, pts, 4)
			}
		})
	}
}
