package tracestore

import (
	"fmt"
	"testing"
	"time"

	"sfcacd/internal/obs"
)

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// finished builds a completed trace with the given id, status, and
// duration on the test's fixed clock.
func finished(id string, status int, d time.Duration) *obs.Trace {
	tr := obs.NewTrace(id, "POST /v1/experiments/table12", t0)
	tr.Finish(status, t0.Add(d))
	return tr
}

// newStore is a Store with sampling off unless a test arms it, a
// pinned seed, and a fixed clock.
func newStore(o Options) *Store {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Now == nil {
		o.Now = func() time.Time { return t0 }
	}
	return New(o)
}

func TestOfferRequiresFinished(t *testing.T) {
	s := newStore(Options{SampleProb: 1})
	live := obs.NewTrace("live", "GET /", t0)
	if s.Offer(live) {
		t.Error("unfinished trace was kept")
	}
	if s.Offer(nil) {
		t.Error("nil trace was kept")
	}
	if s.Len() != 0 {
		t.Errorf("store retained %d traces", s.Len())
	}
}

func TestErrorsAlwaysKept(t *testing.T) {
	s := newStore(Options{SampleProb: -1, SlowestK: -1})
	for i, status := range []int{500, 503, 504} {
		id := fmt.Sprintf("err%d", i)
		if !s.Offer(finished(id, status, time.Millisecond)) {
			t.Errorf("status %d trace not kept", status)
		}
		if _, ok := s.Get(id); !ok {
			t.Errorf("status %d trace not retrievable", status)
		}
	}
	if s.Offer(finished("ok", 200, time.Millisecond)) {
		t.Error("healthy trace kept with sampling and slowest-K disabled")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestSlowestKDisplacement(t *testing.T) {
	s := newStore(Options{SampleProb: -1, SlowestK: 2})
	s.Offer(finished("slow10", 200, 10*time.Millisecond))
	s.Offer(finished("slow30", 200, 30*time.Millisecond))
	// Faster than both current members: not kept.
	if s.Offer(finished("fast5", 200, 5*time.Millisecond)) {
		t.Error("trace faster than the slowest-K floor was kept")
	}
	// Slower than the floor: kept, displacing the fastest member.
	if !s.Offer(finished("slow20", 200, 20*time.Millisecond)) {
		t.Error("displacing trace not kept")
	}
	if _, ok := s.Get("slow10"); ok {
		t.Error("displaced trace still retrievable")
	}
	for _, id := range []string{"slow20", "slow30"} {
		if _, ok := s.Get(id); !ok {
			t.Errorf("%s missing from slowest set", id)
		}
	}
}

func TestRingEviction(t *testing.T) {
	s := newStore(Options{Capacity: 2, SampleProb: -1, SlowestK: -1})
	s.Offer(finished("e1", 500, time.Millisecond))
	s.Offer(finished("e2", 500, time.Millisecond))
	s.Offer(finished("e3", 500, time.Millisecond))
	if _, ok := s.Get("e1"); ok {
		t.Error("oldest ring entry survived past capacity")
	}
	for _, id := range []string{"e2", "e3"} {
		if _, ok := s.Get(id); !ok {
			t.Errorf("%s evicted early", id)
		}
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

// TestErrorEvictionSparesSlowest: slow-only traces live outside the
// ring, so an error burst cannot evict the slowest-K set.
func TestErrorEvictionSparesSlowest(t *testing.T) {
	s := newStore(Options{Capacity: 2, SampleProb: -1, SlowestK: 1})
	s.Offer(finished("slowest", 200, time.Hour))
	for i := 0; i < 10; i++ {
		s.Offer(finished(fmt.Sprintf("e%d", i), 500, time.Millisecond))
	}
	if _, ok := s.Get("slowest"); !ok {
		t.Error("error burst evicted a slowest-K trace")
	}
}

func TestSamplingDeterministic(t *testing.T) {
	keeps := func(seed uint64) []bool {
		s := newStore(Options{Seed: seed, SlowestK: -1, SampleProb: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Offer(finished(fmt.Sprintf("t%d", i), 200, time.Millisecond))
		}
		return out
	}
	a, b := keeps(7), keeps(7)
	var kept int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offer %d: same seed, different decision", i)
		}
		if a[i] {
			kept++
		}
	}
	if kept == 0 || kept == len(a) {
		t.Errorf("prob 0.5 kept %d/%d — sampling looks stuck", kept, len(a))
	}
	c := keeps(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decision streams")
	}
}

// TestSamplingStreamPosition: the decision stream advances once per
// offer regardless of whether earlier offers were errors, so the
// sampled subset of healthy traffic is independent of interleaved
// failures.
func TestSamplingStreamPosition(t *testing.T) {
	run := func(errorFirst bool) bool {
		s := newStore(Options{Seed: 7, SlowestK: -1, SampleProb: 0.5})
		st := 200
		if errorFirst {
			st = 500
		}
		s.Offer(finished("first", st, time.Millisecond))
		return s.Offer(finished("second", 200, time.Millisecond))
	}
	if run(false) != run(true) {
		t.Error("an error offer shifted the sampling stream for later offers")
	}
}

func TestListNewestFirstAndKeptReasons(t *testing.T) {
	s := newStore(Options{SampleProb: -1, SlowestK: 1, Capacity: 4})
	s.Offer(finished("slowone", 200, time.Hour))
	s.Offer(finished("errone", 504, time.Millisecond))
	tr := finished("errtwo", 503, time.Millisecond)
	tr.Annotate("cache", "miss")
	s.Offer(tr)

	list := s.List()
	if len(list) != 3 {
		t.Fatalf("List len = %d, want 3", len(list))
	}
	if list[0].ID != "errtwo" || list[1].ID != "errone" || list[2].ID != "slowone" {
		t.Errorf("order = %s, %s, %s; want newest first", list[0].ID, list[1].ID, list[2].ID)
	}
	if list[0].Status != 503 || list[0].Attrs["cache"] != "miss" {
		t.Errorf("entry = %+v", list[0])
	}
	if len(list[2].Kept) != 1 || list[2].Kept[0] != "slowest" {
		t.Errorf("slowone kept reasons = %v", list[2].Kept)
	}
	if len(list[1].Kept) != 1 || list[1].Kept[0] != "error" {
		t.Errorf("errone kept reasons = %v", list[1].Kept)
	}
	if list[2].DurationNs != time.Hour.Nanoseconds() {
		t.Errorf("duration = %d", list[2].DurationNs)
	}
}

func TestNewIDDeterministicAndDistinct(t *testing.T) {
	a := newStore(Options{Seed: 9})
	b := newStore(Options{Seed: 9})
	seen := make(map[string]bool)
	for i := 0; i < 16; i++ {
		ida, idb := a.NewID(), b.NewID()
		if ida != idb {
			t.Fatalf("draw %d: same seed produced %q and %q", i, ida, idb)
		}
		if len(ida) != 32 {
			t.Fatalf("id %q is not 32 hex chars", ida)
		}
		if seen[ida] {
			t.Fatalf("id %q repeated", ida)
		}
		seen[ida] = true
	}
}
