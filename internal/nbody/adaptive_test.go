package nbody

import (
	"math/cmplx"
	"testing"

	"sfcacd/internal/rng"
)

func TestAdaptiveMatchesDirectUniform(t *testing.T) {
	s := randomSystem(41, 2500)
	direct, err := SolveDirect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmm, err := SolveAdaptiveFMM(s, FMMOptions{Terms: 26})
	if err != nil {
		t.Fatal(err)
	}
	if e := RelativeError(fmm, direct); e > 1e-6 {
		t.Fatalf("adaptive relative error %g", e)
	}
	var maxDiff, maxMag float64
	for i := range direct.Gradient {
		if d := cmplx.Abs(fmm.Gradient[i] - direct.Gradient[i]); d > maxDiff {
			maxDiff = d
		}
		if m := cmplx.Abs(direct.Gradient[i]); m > maxMag {
			maxMag = m
		}
	}
	if maxDiff/maxMag > 1e-5 {
		t.Fatalf("adaptive gradient relative error %g", maxDiff/maxMag)
	}
}

func TestAdaptiveMatchesDirectClustered(t *testing.T) {
	// The adaptive solver's reason to exist: a brutal cluster plus
	// distant stragglers.
	r := rng.New(43)
	var s System
	for i := 0; i < 1200; i++ {
		s.Pos = append(s.Pos, complex(0.9+0.004*r.Float64(), 0.9+0.004*r.Float64()))
		s.Q = append(s.Q, r.Float64()*2-1)
	}
	for i := 0; i < 80; i++ {
		s.Pos = append(s.Pos, complex(r.Float64(), r.Float64()))
		s.Q = append(s.Q, 1)
	}
	direct, err := SolveDirect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmm, err := SolveAdaptiveFMM(s, FMMOptions{Terms: 28, MaxDepth: 14, LeafSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if e := RelativeError(fmm, direct); e > 1e-6 {
		t.Fatalf("clustered adaptive error %g", e)
	}
}

func TestAdaptiveMatchesUniformSolver(t *testing.T) {
	s := randomSystem(47, 3000)
	uni, err := SolveFMM(s, FMMOptions{Terms: 22})
	if err != nil {
		t.Fatal(err)
	}
	ada, err := SolveAdaptiveFMM(s, FMMOptions{Terms: 22})
	if err != nil {
		t.Fatal(err)
	}
	if e := RelativeError(ada, uni); e > 1e-6 {
		t.Fatalf("adaptive vs uniform error %g", e)
	}
}

func TestAdaptiveAccuracyImprovesWithTerms(t *testing.T) {
	s := randomSystem(53, 1200)
	direct, err := SolveDirect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, terms := range []int{6, 12, 22} {
		fmm, err := SolveAdaptiveFMM(s, FMMOptions{Terms: terms})
		if err != nil {
			t.Fatal(err)
		}
		e := RelativeError(fmm, direct)
		if e >= prev {
			t.Fatalf("terms=%d error %g did not improve on %g", terms, e, prev)
		}
		prev = e
	}
}

func TestAdaptiveSmallSystems(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		s := randomSystem(59, n)
		direct, err := SolveDirect(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		fmm, err := SolveAdaptiveFMM(s, FMMOptions{Terms: 20})
		if err != nil {
			t.Fatal(err)
		}
		if e := RelativeError(fmm, direct); e > 1e-9 {
			t.Fatalf("n=%d: error %g", n, e)
		}
	}
}

func TestAdaptiveCoincidentParticles(t *testing.T) {
	s := System{
		Pos: []complex128{0.5 + 0.5i, 0.5 + 0.5i, 0.1 + 0.1i},
		Q:   []float64{1, 1, 1},
	}
	fmm, err := SolveAdaptiveFMM(s, FMMOptions{Terms: 10, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SolveDirect(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := RelativeError(fmm, direct); e > 1e-9 {
		t.Fatalf("coincident error %g", e)
	}
}

func TestAdaptiveRejectsBadSystem(t *testing.T) {
	if _, err := SolveAdaptiveFMM(System{Pos: []complex128{-1}, Q: []float64{1}}, FMMOptions{}); err == nil {
		t.Error("bad system accepted")
	}
}

func TestAdaptiveTreeShapeFollowsClustering(t *testing.T) {
	r := rng.New(61)
	// Uniform cloud: shallow wide tree.
	var uni System
	for i := 0; i < 2000; i++ {
		uni.Pos = append(uni.Pos, complex(r.Float64(), r.Float64()))
		uni.Q = append(uni.Q, 1)
	}
	// Tight cluster: deep narrow tree.
	var clu System
	for i := 0; i < 2000; i++ {
		clu.Pos = append(clu.Pos, complex(0.5+0.001*r.Float64(), 0.5+0.001*r.Float64()))
		clu.Q = append(clu.Q, 1)
	}
	su, err := AdaptiveTreeStats(uni, FMMOptions{LeafSize: 16, MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := AdaptiveTreeStats(clu, FMMOptions{LeafSize: 16, MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if sc.MaxDepth <= su.MaxDepth {
		t.Errorf("cluster depth %d not deeper than uniform %d", sc.MaxDepth, su.MaxDepth)
	}
	// The equivalent uniform tree at the cluster's depth would need
	// 4^depth cells; the adaptive tree stays tiny.
	if sc.Nodes >= 1<<(2*uint(sc.MaxDepth))/1000 {
		t.Errorf("cluster tree (%d nodes) not far below uniform 4^%d", sc.Nodes, sc.MaxDepth)
	}
	if su.MaxLeafSize == 0 || sc.MaxLeafSize == 0 {
		t.Error("degenerate leaf stats")
	}
	if _, err := AdaptiveTreeStats(System{Pos: []complex128{5}, Q: []float64{1}}, FMMOptions{}); err == nil {
		t.Error("bad system accepted by stats")
	}
}

func TestWellSeparatedGeometry(t *testing.T) {
	mk := func(level, ix, iy int) *anode {
		return &anode{level: level, ix: ix, iy: iy, center: cellCenter(level, ix, iy)}
	}
	// Same-level adjacent cells: not separated.
	if wellSeparated(mk(2, 0, 0), mk(2, 1, 0)) {
		t.Error("adjacent cells separated")
	}
	// Same-level cells two apart: separated (gap = one side).
	if !wellSeparated(mk(2, 0, 0), mk(2, 2, 0)) {
		t.Error("gap-1 cells not separated")
	}
	// A small cell adjacent to a big one: not separated.
	if wellSeparated(mk(3, 2, 0), mk(2, 0, 0)) {
		t.Error("touching mixed-size cells separated")
	}
	// A small cell with a big-cell gap: the gap must be at least the
	// BIG side. Level-3 cell at (6,0) vs level-2 cell at (0,0): gap =
	// 0.5 (cells span [0.75,0.875] and [0,0.25]) = 2x big side 0.25.
	if !wellSeparated(mk(3, 6, 0), mk(2, 0, 0)) {
		t.Error("well separated mixed-size cells rejected")
	}
	// Level-3 cell at (3,0) (span [0.375,0.5]) vs level-2 (0,0) (span
	// [0,0.25]): gap 0.125 < big side 0.25: not separated.
	if wellSeparated(mk(3, 3, 0), mk(2, 0, 0)) {
		t.Error("insufficient gap accepted")
	}
}
