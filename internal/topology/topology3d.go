package topology

import (
	"fmt"
	"math/bits"

	"sfcacd/internal/geom3"
	"sfcacd/internal/sfc"
)

// This file adds the 3D networks used by the future-work (item iii of
// the paper asks for direct mappings onto 2D/3D interconnects): the 3D
// mesh and torus with SFC-driven rank placement, and the octree
// network. Bus, ring, and hypercube are dimension-agnostic already.

// grid3D carries shared 3D mesh/torus state.
type grid3D struct {
	side      uint32
	coords    []geom3.Point3
	rankAt    []int32
	placement string
}

func newGrid3D(procOrder uint, placement sfc.NDCurve) grid3D {
	if procOrder > 10 {
		panic("topology: 3D grid order too large")
	}
	if placement.Dims() != 3 {
		panic(fmt.Sprintf("topology: 3D grid placement curve has %d dims", placement.Dims()))
	}
	side := geom3.Side(procOrder)
	p := int(geom3.Cells(procOrder))
	g := grid3D{
		side:      side,
		coords:    make([]geom3.Point3, p),
		rankAt:    make([]int32, p),
		placement: placement.Name(),
	}
	buf := make([]uint32, 3)
	for rank := 0; rank < p; rank++ {
		placement.CoordsND(procOrder, uint64(rank), buf)
		pt := geom3.Pt3(buf[0], buf[1], buf[2])
		g.coords[rank] = pt
		g.rankAt[geom3.CellID(pt, side)] = int32(rank)
	}
	return g
}

// Coord returns the grid position of a rank.
func (g *grid3D) Coord(rank int) geom3.Point3 { return g.coords[rank] }

// RankAt returns the rank placed at a position.
func (g *grid3D) RankAt(pt geom3.Point3) int { return int(g.rankAt[geom3.CellID(pt, g.side)]) }

// Side returns the cube side.
func (g *grid3D) Side() uint32 { return g.side }

// Placement names the placement curve.
func (g *grid3D) Placement() string { return g.placement }

// Mesh3D is the 3D mesh: a cube of processors with face-neighbor
// links.
type Mesh3D struct {
	grid3D
}

// NewMesh3D returns a 2^procOrder-sided cube mesh (p = 8^procOrder)
// placed along the given 3D curve.
func NewMesh3D(procOrder uint, placement sfc.NDCurve) *Mesh3D {
	return &Mesh3D{grid3D: newGrid3D(procOrder, placement)}
}

// Name implements Topology.
func (m *Mesh3D) Name() string { return "mesh3d" }

// P implements Topology.
func (m *Mesh3D) P() int { return len(m.coords) }

// Distance implements Topology: 3D Manhattan distance.
func (m *Mesh3D) Distance(a, b int) int {
	checkRank(m, a)
	checkRank(m, b)
	return geom3.Manhattan(m.coords[a], m.coords[b])
}

// Neighbors implements NeighborLister.
func (m *Mesh3D) Neighbors(p int, buf []int) []int {
	checkRank(m, p)
	return m.neighbors3(p, false, buf)
}

// Torus3D is the 3D torus: the mesh plus wrap links per dimension.
type Torus3D struct {
	grid3D
}

// NewTorus3D returns a 2^procOrder-sided cube torus placed along the
// given 3D curve.
func NewTorus3D(procOrder uint, placement sfc.NDCurve) *Torus3D {
	return &Torus3D{grid3D: newGrid3D(procOrder, placement)}
}

// Name implements Topology.
func (t *Torus3D) Name() string { return "torus3d" }

// P implements Topology.
func (t *Torus3D) P() int { return len(t.coords) }

// Distance implements Topology: per-dimension wrapped Manhattan
// distance.
func (t *Torus3D) Distance(a, b int) int {
	checkRank(t, a)
	checkRank(t, b)
	ca, cb := t.coords[a], t.coords[b]
	return wrapDist(ca.X, cb.X, t.side) + wrapDist(ca.Y, cb.Y, t.side) + wrapDist(ca.Z, cb.Z, t.side)
}

// Neighbors implements NeighborLister.
func (t *Torus3D) Neighbors(p int, buf []int) []int {
	checkRank(t, p)
	return t.neighbors3(p, true, buf)
}

func (g *grid3D) neighbors3(p int, wrap bool, buf []int) []int {
	c := g.coords[p]
	side := int(g.side)
	if side == 1 {
		return buf
	}
	deltas := [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	for _, d := range deltas {
		x, y, z := int(c.X)+d[0], int(c.Y)+d[1], int(c.Z)+d[2]
		if wrap {
			x, y, z = (x+side)%side, (y+side)%side, (z+side)%side
		} else if !geom3.InBounds(x, y, z, g.side) {
			continue
		}
		n := g.RankAt(geom3.Pt3(uint32(x), uint32(y), uint32(z)))
		dup := false
		for _, v := range buf {
			if v == n {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, n)
		}
	}
	return buf
}

// OctreeNet is the 3D analog of the quadtree network: p = 8^levels
// processors at the leaves of a complete 8-ary switch tree, leaves
// labeled in Morton order.
type OctreeNet struct {
	levels uint
}

// NewOctreeNet returns an octree network with 8^levels processors.
func NewOctreeNet(levels uint) *OctreeNet {
	if levels > 10 {
		panic("topology: octree levels too large")
	}
	return &OctreeNet{levels: levels}
}

// Name implements Topology.
func (o *OctreeNet) Name() string { return "octree" }

// P implements Topology.
func (o *OctreeNet) P() int { return 1 << (3 * o.levels) }

// Distance implements Topology: 2 * (levels - common base-8 prefix).
func (o *OctreeNet) Distance(a, b int) int {
	checkRank(o, a)
	checkRank(o, b)
	if a == b {
		return 0
	}
	diff := uint32(a) ^ uint32(b)
	top := uint(bits.Len32(diff))
	digits := (top + 2) / 3
	return int(2 * digits)
}
