package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 equal outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	child := r.Split()
	// The child and parent streams should not be identical.
	diff := false
	for i := 0; i < 16; i++ {
		if r.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Split produced an identical stream")
	}
}

func TestUint32nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint32{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			if v := r.Uint32n(n); v >= n {
				t.Fatalf("Uint32n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint32nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint32n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestUint32nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint32n(0) did not panic")
		}
	}()
	New(1).Uint32n(0)
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %f, want ~1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate %f < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %f, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	out := make([]int, 100)
	r.Perm(out)
	seen := make([]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestPermShuffles(t *testing.T) {
	r := New(19)
	out := make([]int, 50)
	r.Perm(out)
	fixed := 0
	for i, v := range out {
		if i == v {
			fixed++
		}
	}
	if fixed > 10 {
		t.Errorf("%d/50 fixed points; Perm looks like identity", fixed)
	}
}

func TestGoldenStream(t *testing.T) {
	// Pin the first outputs of seed 0 so accidental algorithm changes
	// (which would silently change every experiment) are caught.
	r := New(0)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(0)
	for i, want := range got {
		if v := r2.Uint64(); v != want {
			t.Fatalf("stream not stable at %d: %d vs %d", i, v, want)
		}
	}
	// And the stream must not be all equal.
	if got[0] == got[1] && got[1] == got[2] {
		t.Fatal("constant stream")
	}
}
