package topology

import (
	"testing"

	"sfcacd/internal/sfc"
)

// fillTargets returns one instance of every topology, across placements
// for the grid networks (placement permutes coords, which the fills
// must honor).
func fillTargets() []Topology {
	return []Topology{
		NewBus(17),
		NewRing(16),
		NewRing(17),
		NewMesh(2, sfc.RowMajor),
		NewMesh(2, sfc.Hilbert),
		NewMesh(2, sfc.Gray),
		NewTorus(2, sfc.RowMajor),
		NewTorus(2, sfc.Morton),
		NewTorus(3, sfc.Hilbert),
		NewHypercube(5),
		NewQuadtreeNet(3),
	}
}

// TestFillDistanceRowMatchesDistance: every topology's analytic row
// fill agrees cell-for-cell with its Distance method.
func TestFillDistanceRowMatchesDistance(t *testing.T) {
	for _, topo := range fillTargets() {
		f, ok := topo.(RowFiller)
		if !ok {
			t.Fatalf("%s does not implement RowFiller", topo.Name())
		}
		p := topo.P()
		row := make([]uint16, p)
		for src := 0; src < p; src++ {
			f.FillDistanceRow(src, row)
			for dst := 0; dst < p; dst++ {
				if want := topo.Distance(src, dst); int(row[dst]) != want {
					t.Fatalf("%s: row fill (%d,%d)=%d, Distance=%d", topo.Name(), src, dst, row[dst], want)
				}
			}
		}
	}
}

// TestDistanceTableLazyPromotion: the table starts empty, refuses rows
// for sparse lookups, and promotes to the full form once the pending
// volume amortizes the build — at which point every cell must match
// the underlying topology.
func TestDistanceTableLazyPromotion(t *testing.T) {
	topo := NewTorus(2, sfc.Hilbert) // p = 16, full table = 256 cells
	dt := NewDistanceTable(topo)
	if row := dt.RowFor(3, 1); row != nil {
		t.Fatal("RowFor promoted on a single-pair lookup")
	}
	// Drive enough volume through RowFor to cross the build threshold.
	var row []uint16
	for i := 0; i < 80 && row == nil; i++ {
		row = dt.RowFor(5, 16)
	}
	if row == nil {
		t.Fatal("RowFor never promoted despite sustained volume")
	}
	for dst := range row {
		if int(row[dst]) != topo.Distance(5, dst) {
			t.Fatalf("promoted row: (5,%d)=%d, want %d", dst, row[dst], topo.Distance(5, dst))
		}
	}
	// After promotion the table answers Distance itself, for any pair.
	for src := 0; src < topo.P(); src++ {
		for dst := 0; dst < topo.P(); dst++ {
			if dt.Distance(src, dst) != topo.Distance(src, dst) {
				t.Fatalf("table Distance(%d,%d) diverged", src, dst)
			}
		}
	}
}

// TestDistanceTableIsTopology: the table substitutes for its underlying
// network, before any materialization happens.
func TestDistanceTableIsTopology(t *testing.T) {
	topo := NewHypercube(4)
	dt := NewDistanceTable(topo)
	if dt.Name() != topo.Name() || dt.P() != topo.P() || dt.Underlying() != Topology(topo) {
		t.Fatal("table does not mirror its underlying topology")
	}
	for src := 0; src < topo.P(); src++ {
		for dst := 0; dst < topo.P(); dst++ {
			if dt.Distance(src, dst) != topo.Distance(src, dst) {
				t.Fatalf("unmaterialized Distance(%d,%d) diverged", src, dst)
			}
		}
	}
}
