// Package fmmmodel implements the paper's abstraction (§III–IV) of the
// Fast Multipole Method's communication structure and computes the
// Average Communicated Distance it induces on a given network.
//
// Two interaction families are modeled separately, as in the paper:
//
//   - Near-field interactions (NFI): every particle exchanges data with
//     every particle within spatial radius r; each exchange costs the
//     network hop distance between the owning processors.
//   - Far-field interactions (FFI): the quadtree-structured
//     interpolation (upward accumulation), anterpolation (downward
//     accumulation), and interaction-list exchanges, between per-cell
//     representative processors (the minimum rank in the cell).
//
// The model is contention-unaware: distances are shortest-path hop
// counts regardless of concurrent traffic (§IV step 6).
package fmmmodel

import (
	"runtime"
	"sync"

	"sfcacd/internal/acd"
	"sfcacd/internal/geom"
	"sfcacd/internal/keynav"
	"sfcacd/internal/obs"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/topology"
)

// NFIOptions configures the near-field model.
type NFIOptions struct {
	// Radius is the neighborhood radius r (default 1: the 8
	// edge/corner-adjacent cells).
	Radius int
	// Metric selects the neighborhood shape; the paper's near-field
	// bound ("at most 8" for r=1) corresponds to Chebyshev.
	Metric geom.Metric
	// Workers caps the worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// Engine selects the neighbor-resolution machinery on the matrix
	// path (NFIMatrix/NFIMulti): the assignment's rank table (tree,
	// the default and oracle) or the key-space index (keys). Results
	// are bit-identical; only the cost differs. The direct NFI path
	// always uses the rank table — it is the oracle the engines are
	// tested against.
	Engine keynav.Engine
}

func (o *NFIOptions) normalize() {
	if o.Radius == 0 {
		o.Radius = 1
	}
	if o.Workers <= 0 {
		o.Workers = defaultWorkers()
	}
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// resolveEngine pins keynav.EngineAuto to a concrete engine for a grid
// of the given order: the tree path (rank table + quadtree) where the
// dense rank table fits its memory budget, the key-space engine where
// the table would have to fall back to sparse probing. Concrete
// engines pass through unchanged, and results are bit-identical either
// way — the heuristic only moves cost.
func resolveEngine(e keynav.Engine, order uint) keynav.Engine {
	if e != keynav.EngineAuto {
		return e
	}
	if acd.DenseRankTableFits(order) {
		return keynav.EngineTree
	}
	return keynav.EngineKeys
}

// NFI computes the ACD accumulator for all near-field interactions of
// the assignment on the given topology: §IV steps 5–7. Every ordered
// particle pair (x, y) with d(x, y) <= r contributes one communication
// event of the owning processors' hop distance (possibly zero).
func NFI(a *acd.Assignment, topo topology.Topology, opts NFIOptions) acd.Accumulator {
	defer obs.StartSpan("accumulation.nfi").End()
	opts.normalize()
	n := a.N()
	workers := opts.Workers
	if workers > n {
		workers = n
	}
	results := make(chan acd.Accumulator, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			var local acd.Accumulator
			for i := lo; i < hi; i++ {
				p := a.Particles[i]
				mine := int(a.Ranks[i])
				geom.VisitNeighborhood(p, opts.Radius, opts.Metric, a.Side(), func(q geom.Point) {
					if r := a.RankAt(q); r >= 0 {
						local.Add(topo.Distance(mine, int(r)))
					}
				})
			}
			results <- local
		}(lo, hi)
	}
	var total acd.Accumulator
	for w := 0; w < workers; w++ {
		total.Merge(<-results)
	}
	// Publish in bulk: one Distance call per recorded event.
	total.Record()
	topology.CountDistanceQueries(total.Count)
	return total
}

// FFIResult breaks the far-field ACD into the paper's three
// communication types.
type FFIResult struct {
	// Interpolation is the upward accumulation: each occupied cell's
	// representative sends to its parent cell's representative, at
	// every level.
	Interpolation acd.Accumulator
	// Anterpolation is the downward accumulation: the same links
	// traversed parent-to-child.
	Anterpolation acd.Accumulator
	// InteractionList covers the well-separated cell exchanges at every
	// level (children of the parent's neighbors not adjacent to the
	// cell).
	InteractionList acd.Accumulator
}

// Total merges the three accumulators: §IV step 10.
func (r FFIResult) Total() acd.Accumulator {
	var t acd.Accumulator
	t.Merge(r.Interpolation)
	t.Merge(r.Anterpolation)
	t.Merge(r.InteractionList)
	return t
}

// record publishes the three final accumulators and the Distance-call
// volume. Interpolation and anterpolation share one Distance call per
// parent-child link, so only the interpolation count contributes.
func (r FFIResult) record() {
	r.Interpolation.Record()
	r.Anterpolation.Record()
	r.InteractionList.Record()
	topology.CountDistanceQueries(r.Interpolation.Count + r.InteractionList.Count)
}

// recordMatrixPath publishes the three final accumulators without
// touching the distance-query counter: on the matrix path the (far
// fewer) analytic queries are accounted for by the contraction and the
// distance-table builds themselves.
func (r FFIResult) recordMatrixPath() {
	r.Interpolation.Record()
	r.Anterpolation.Record()
	r.InteractionList.Record()
}

// FFIOptions configures the far-field model.
type FFIOptions struct {
	// Workers caps the worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// Engine selects the far-field structure on the matrix path
	// (FFIMulti): the dense representative quadtree (tree, the default
	// and oracle) or the key-space level slabs (keys). See
	// NFIOptions.Engine.
	Engine keynav.Engine
}

// FFI computes the far-field ACD of the assignment on the given
// topology: §IV far-field steps 5–10.
func FFI(a *acd.Assignment, topo topology.Topology, opts FFIOptions) FFIResult {
	tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
	return FFIFromTree(tree, topo, opts)
}

// FFIFromTree computes the far-field ACD from a prebuilt representative
// tree (letting callers amortize tree construction across topologies).
func FFIFromTree(tree *quadtree.RankTree, topo topology.Topology, opts FFIOptions) FFIResult {
	defer obs.StartSpan("accumulation.ffi").End()
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	var res FFIResult
	// Interpolation and anterpolation: parent-child links at every
	// level. The work is light (one pass per level), so it stays
	// serial and deterministic.
	for l := tree.Order; l >= 1; l-- {
		tree.VisitCells(l, func(x, y uint32, rep int32) {
			parentRep := tree.Rep(l-1, x/2, y/2)
			d := topo.Distance(int(rep), int(parentRep))
			res.Interpolation.Add(d)
			res.Anterpolation.Add(d)
		})
	}
	// Interaction lists, parallelized over row stripes within each
	// level.
	for l := uint(2); l <= tree.Order; l++ {
		res.InteractionList.Merge(interactionLevel(tree, topo, l, opts.Workers))
	}
	res.record()
	return res
}

// interactionLevel sums interaction-list communications at one level.
func interactionLevel(tree *quadtree.RankTree, topo topology.Topology, level uint, workers int) acd.Accumulator {
	side := geom.Side(level)
	if workers > int(side) {
		workers = int(side)
	}
	stripe := (int(side) + workers - 1) / workers
	var wg sync.WaitGroup
	results := make(chan acd.Accumulator, workers)
	for w := 0; w < workers; w++ {
		yLo := uint32(w * stripe)
		yHi := yLo + uint32(stripe)
		if yHi > side {
			yHi = side
		}
		if yLo >= yHi {
			continue
		}
		wg.Add(1)
		go func(yLo, yHi uint32) {
			defer wg.Done()
			var local acd.Accumulator
			for y := yLo; y < yHi; y++ {
				for x := uint32(0); x < side; x++ {
					rep := tree.Rep(level, x, y)
					if rep == -1 {
						continue
					}
					tree.InteractionList(level, x, y, func(_, _ uint32, other int32) {
						local.Add(topo.Distance(int(rep), int(other)))
					})
				}
			}
			results <- local
		}(yLo, yHi)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	var total acd.Accumulator
	for r := range results {
		total.Merge(r)
	}
	return total
}
