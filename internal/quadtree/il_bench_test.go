package quadtree

import (
	"fmt"
	"testing"
)

// BenchmarkInteractionList measures the far-field enumeration cost the
// key-space engine replaces: one full sweep of
// VisitUpperInteractionPairs over every level of the tree — the
// commmat.build.ffi hot loop. The dense row scans visit every grid
// cell, occupied or not, so cost scales with 4^order rather than with
// occupancy; compare with the occupancy-proportional keynav path
// (BenchmarkKeyNavILPairs in internal/keynav).
func BenchmarkInteractionList(b *testing.B) {
	for _, tc := range []struct {
		order uint
		n     int
	}{{6, 1000}, {8, 15625}} {
		pts := benchPoints(tc.n, tc.order)
		ranks := make([]int32, len(pts))
		for i := range ranks {
			ranks[i] = int32(i % 64)
		}
		tree := BuildRankTree(tc.order, pts, ranks)
		b.Run(fmt.Sprintf("order%d_n%d", tc.order, tc.n), func(b *testing.B) {
			var events int
			for i := 0; i < b.N; i++ {
				for l := uint(2); l <= tree.Order; l++ {
					tree.VisitUpperInteractionPairs(l, 0, 1<<l, func(rep, other int32) {
						events++
					})
				}
			}
			_ = events
		})
		tree.Release()
	}
}
