// Package commmat provides topology-independent communication
// matrices: sparse (or, for small processor counts, dense) aggregations
// of a communication event stream by (src, dst) rank pair.
//
// The paper's model (§IV) makes the event stream of an assignment
// independent of the network, and chunk-monotone rank assignment makes
// it highly repetitive: a near-field or interaction-list traversal
// touches far fewer distinct rank pairs than events. Aggregating the
// stream once turns multi-topology evaluation into a contraction — one
// distance lookup per *distinct* pair, applied with Accumulator.AddN —
// so sweeping T topologies costs O(events + distinctPairs x T) instead
// of O(events x T). This is the communication-matrix formulation of the
// topology-mapping literature (Hoefler & Snir; hop-byte metrics),
// specialized to exact event counts.
//
// Build with a Builder (one Shard per concurrent worker, merged into an
// immutable Matrix by Finalize), then contract with Matrix.Contract or,
// faster, Matrix.ContractTable against a topology.DistanceTable. Event
// streams whose pair relation is symmetric (near field, interaction
// lists) are best aggregated in canonical src <= dst form — each
// unordered pair recorded once — and contracted with the Sym variants,
// which weight every pair by both directions.
//
// Aggregation is hash-free on the hot path: events count directly into
// a pooled scratch grid with a one-bit-per-pair occupancy bitmap.
// Chunk-monotone assignments keep communicating ranks close, so for
// large p the grid stores only a band of dst-src deltas per source row
// — a working set that fits cache where a full p x p grid cannot — and
// the rare out-of-band pair lands in a small per-shard overflow map.
// Finalize emits the matrix by scanning the bitmap's set bits (already
// in (src, dst) order, merged with the sorted overflow), zeroing the
// scratch behind itself for reuse.
package commmat

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"sfcacd/internal/acd"
	"sfcacd/internal/obs"
	"sfcacd/internal/topology"
)

// Build-volume counters: "commmat.events" counts aggregated
// communication events, "commmat.pairs" distinct (src, dst) rank pairs.
// Their ratio is the dedup factor the contraction exploits; cmd/acdbench
// derives the "commmat.dedup_ratio" gauge from them for run manifests.
var (
	eventsCounter = obs.GetCounter("commmat.events")
	pairsCounter  = obs.GetCounter("commmat.pairs")
	buildsCounter = obs.GetCounter("commmat.builds")
)

const (
	// denseCells is the largest p*p for which the finalized matrix
	// stores a dense p x p count grid (512 x 512 = 1 MiB of uint32)
	// instead of the CSR form. Dense matrices contract with pure array
	// indexing.
	denseCells = 1 << 18
	// maxScratchCells caps the scratch grid at 32 MiB of uint32. Up to
	// that budget the grid covers all of p x p; past it each source row
	// covers a band of dst-src deltas (p = 4096 gets a 2048-wide band,
	// p = 65536 a 128-wide one), and below one 64-cell bitmap word per
	// row aggregation is purely overflow-based.
	maxScratchCells = 1 << 23
)

// scratchStride returns the scratch-grid row width for p ranks: p
// itself (full grid), a delta band, or 0 for overflow-only
// aggregation. Band strides are multiples of 64 so bitmap words never
// straddle rows.
func scratchStride(p int) int {
	if p*p <= maxScratchCells {
		return p
	}
	return (maxScratchCells / p) &^ 63
}

// scratch is a reusable aggregation grid: counts plus an occupancy
// bitmap. Finalize re-zeroes it and returns it to the free list, which
// holds strong references so the grids survive garbage collection.
type scratch struct {
	grid []uint32
	bm   []uint64
}

var (
	scratchMu   sync.Mutex
	scratchFree []*scratch
)

const scratchKeep = 3

func getScratch(cells int) *scratch {
	words := (cells + 63) / 64
	scratchMu.Lock()
	for i, s := range scratchFree {
		if len(s.grid) >= cells && len(s.bm) >= words {
			scratchFree = append(scratchFree[:i], scratchFree[i+1:]...)
			scratchMu.Unlock()
			return s
		}
	}
	scratchMu.Unlock()
	return &scratch{grid: make([]uint32, cells), bm: make([]uint64, words)}
}

func putScratch(s *scratch) {
	scratchMu.Lock()
	if len(scratchFree) < scratchKeep {
		scratchFree = append(scratchFree, s)
	}
	scratchMu.Unlock()
}

// Matrix is an immutable communication matrix over p processor ranks:
// for every (src, dst) rank pair, the number of communication events
// from src to dst. Zero-count pairs are not represented (the dense form
// stores them as zero cells). Build one with a Builder.
type Matrix struct {
	p      int
	events uint64
	pairs  int
	// diag is the event total of the diagonal (src == dst) pairs.
	// Because hop distance is a metric — zero iff the ranks are equal —
	// a contraction's Count is always events and its Zeros always diag,
	// whatever the topology; the fused multi-table pass reads both here
	// instead of re-tallying them per table.
	diag uint64
	// dense[src*p+dst] holds the pair count when p*p <= denseCells.
	dense []uint32
	// CSR form otherwise: rowSrc lists the distinct source ranks in
	// ascending order; row r's pairs are dsts/counts[rowStart[r]:
	// rowStart[r+1]], with dsts ascending within the row.
	rowSrc   []int32
	rowStart []int32
	dsts     []int32
	counts   []uint32
}

// P returns the number of processor ranks the matrix is defined over.
func (m *Matrix) P() int { return m.p }

// Events returns the total number of aggregated communication events.
func (m *Matrix) Events() uint64 { return m.events }

// Pairs returns the number of distinct (src, dst) pairs with at least
// one event.
func (m *Matrix) Pairs() int { return m.pairs }

// DedupRatio returns Events/Pairs, the average number of events per
// distinct pair — the factor by which contraction shrinks the distance
// workload. It is 0 for an empty matrix.
func (m *Matrix) DedupRatio() float64 {
	if m.pairs == 0 {
		return 0
	}
	return float64(m.events) / float64(m.pairs)
}

// Visit calls fn for every pair with a nonzero count, in ascending
// (src, dst) order.
func (m *Matrix) Visit(fn func(src, dst int32, n uint32)) {
	if m.dense != nil {
		for src := 0; src < m.p; src++ {
			base := src * m.p
			for dst := 0; dst < m.p; dst++ {
				if n := m.dense[base+dst]; n != 0 {
					fn(int32(src), int32(dst), n)
				}
			}
		}
		return
	}
	for r, src := range m.rowSrc {
		for i := m.rowStart[r]; i < m.rowStart[r+1]; i++ {
			fn(src, m.dsts[i], m.counts[i])
		}
	}
}

// Contract applies the matrix against a topology directly: one Distance
// interface call per distinct pair. It is the portable (and oracle)
// contraction; ContractTable is the fast path.
func (m *Matrix) Contract(t topology.Topology, acc *acd.Accumulator) {
	m.contract(t, acc, 1)
}

// ContractSym is Contract for a symmetric-canonical matrix (unordered
// pair counts with src <= dst): every pair's events are weighted twice,
// once per direction, which is exact because hop distance is symmetric.
func (m *Matrix) ContractSym(t topology.Topology, acc *acd.Accumulator) {
	m.contract(t, acc, 2)
}

func (m *Matrix) contract(t topology.Topology, acc *acd.Accumulator, weight int) {
	m.Visit(func(src, dst int32, n uint32) {
		acc.AddN(t.Distance(int(src), int(dst)), weight*int(n))
	})
	topology.CountDistanceQueries(uint64(m.pairs))
}

// ContractTable applies the matrix against a precomputed distance
// table: rows dense enough to amortize a table-row build are contracted
// with devirtualized array indexing, the rest with direct Distance
// calls per distinct pair.
func (m *Matrix) ContractTable(dt *topology.DistanceTable, acc *acd.Accumulator) {
	m.contractTable(dt, acc, 1)
}

// ContractTableSym is ContractTable for a symmetric-canonical matrix;
// see ContractSym.
func (m *Matrix) ContractTableSym(dt *topology.DistanceTable, acc *acd.Accumulator) {
	m.contractTable(dt, acc, 2)
}

func (m *Matrix) contractTable(dt *topology.DistanceTable, acc *acd.Accumulator, weight int) {
	t := dt.Underlying()
	direct := uint64(0)
	if m.dense != nil {
		for src := 0; src < m.p; src++ {
			base := src * m.p
			if row := dt.RowFor(src, m.p); row != nil {
				for dst := 0; dst < m.p; dst++ {
					if n := m.dense[base+dst]; n != 0 {
						acc.AddN(int(row[dst]), weight*int(n))
					}
				}
				continue
			}
			for dst := 0; dst < m.p; dst++ {
				if n := m.dense[base+dst]; n != 0 {
					acc.AddN(t.Distance(src, dst), weight*int(n))
					direct++
				}
			}
		}
		topology.CountDistanceQueries(direct)
		return
	}
	for r, src := range m.rowSrc {
		lo, hi := m.rowStart[r], m.rowStart[r+1]
		if row := dt.RowFor(int(src), int(hi-lo)); row != nil {
			for i := lo; i < hi; i++ {
				acc.AddN(int(row[m.dsts[i]]), weight*int(m.counts[i]))
			}
			continue
		}
		for i := lo; i < hi; i++ {
			acc.AddN(t.Distance(int(src), int(m.dsts[i])), weight*int(m.counts[i]))
		}
		direct += uint64(hi - lo)
	}
	topology.CountDistanceQueries(direct)
}

// Builder aggregates a communication event stream into a Matrix.
// Create one Shard per concurrent producer; each Shard must be fed from
// a single goroutine at a time. Finalize (single goroutine, after all
// producers stop) merges the shards into the immutable Matrix.
type Builder struct {
	p      int
	stride int      // scratch row width; 0 = overflow-only aggregation
	scr    *scratch // shared by all shards when stride > 0
	shards []*Shard
}

// NewBuilder returns a builder over p ranks with the given number of
// shards (clamped to at least one).
func NewBuilder(p, workers int) *Builder { return NewBuilderBanded(p, workers, 0) }

// NewBuilderBanded is NewBuilder plus a caller hint that nearly all of
// the stream's dst-src deltas fall in [0, band): the scratch grid then
// covers only that band per source row, shrinking its working set to
// cache-resident size. The hint is purely a performance knob — pairs
// outside the band stay exact through the overflow log — and is
// ignored when the default grid is at least as small, or when p is
// small enough for the dense matrix form.
func NewBuilderBanded(p, workers, band int) *Builder {
	if p < 1 {
		panic("commmat: builder needs at least 1 rank")
	}
	if workers < 1 {
		workers = 1
	}
	stride := scratchStride(p)
	if band > 0 {
		if hb := (band + 63) &^ 63; hb < stride && p*p > denseCells {
			stride = hb
		}
	}
	b := &Builder{p: p, stride: stride, shards: make([]*Shard, workers)}
	if b.stride > 0 {
		b.scr = getScratch(p * b.stride)
	}
	for i := range b.shards {
		s := &Shard{p: int32(p), stride: b.stride, full: b.stride == b.p, shared: workers > 1}
		if b.scr != nil {
			s.grid, s.bm = b.scr.grid, b.scr.bm
		}
		b.shards[i] = s
	}
	return b
}

// Shard returns shard i (0 <= i < workers).
func (b *Builder) Shard(i int) *Shard { return b.shards[i] }

// Shard is one producer-side view of the aggregation. In grid mode
// events count straight into the builder's shared scratch (atomically
// when there are concurrent shards); pairs outside a banded grid's
// delta range — and every pair in overflow-only mode — append to the
// shard-local overflow log, which Finalize sorts and run-length
// collapses.
type Shard struct {
	p      int32
	stride int
	full   bool // grid rows span all of [0, p), not a delta band
	shared bool
	grid   []uint32
	bm     []uint64
	over   []uint64 // one packed (src, dst) key per overflow event
}

// Add records one communication event from src to dst. Both must be in
// [0, p). Streams aggregated in canonical src <= dst order stay on the
// banded fast path; arbitrary pairs remain correct via the overflow
// log.
func (s *Shard) Add(src, dst int32) {
	var idx int
	if s.full {
		idx = int(src)*s.stride + int(dst)
	} else {
		d := int(dst) - int(src)
		if uint(d) >= uint(s.stride) {
			s.over = append(s.over, uint64(uint32(src))<<32|uint64(uint32(dst)))
			return
		}
		idx = int(src)*s.stride + d
	}
	// The occupancy bit only needs setting when the count leaves zero —
	// once per distinct pair, not once per event.
	if s.shared {
		if atomic.AddUint32(&s.grid[idx], 1) == 1 {
			orBit(s.bm, idx)
		}
		return
	}
	c := s.grid[idx]
	s.grid[idx] = c + 1
	if c == 0 {
		s.bm[idx>>6] |= 1 << (uint(idx) & 63)
	}
}

// orBit sets a bitmap bit atomically (compare-and-swap loop).
func orBit(bm []uint64, idx int) {
	addr := &bm[idx>>6]
	bit := uint64(1) << (uint(idx) & 63)
	for {
		old := atomic.LoadUint64(addr)
		if old&bit != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, old|bit) {
			return
		}
	}
}

// Finalize merges all shards into the immutable Matrix and records the
// build in the commmat metrics. The builder must not be reused after.
func (b *Builder) Finalize() *Matrix {
	defer obs.StartSpan("commmat.finalize").End()
	m := &Matrix{p: b.p}
	keys, counts := b.mergedOverflow()
	if b.scr != nil {
		b.finalizeGrid(m, keys, counts)
	} else {
		b.finalizeOverflow(m, keys, counts)
	}
	m.computeDiag()
	b.shards = nil
	buildsCounter.Inc()
	eventsCounter.Add(m.events)
	pairsCounter.Add(uint64(m.pairs))
	return m
}

// mergedOverflow concatenates the shards' overflow logs, sorts them,
// and run-length collapses the result into unique ascending (src, dst)
// keys with per-pair counts.
func (b *Builder) mergedOverflow() ([]uint64, []uint32) {
	total := 0
	for _, s := range b.shards {
		total += len(s.over)
	}
	if total == 0 {
		return nil, nil
	}
	all := make([]uint64, 0, total)
	for _, s := range b.shards {
		all = append(all, s.over...)
		s.over = nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	keys := all[:0] // in-place: the write index never passes the read index
	counts := make([]uint32, 0, 16)
	for i := 0; i < len(all); {
		k := all[i]
		j := i + 1
		for j < len(all) && all[j] == k {
			j++
		}
		keys = append(keys, k)
		counts = append(counts, uint32(j-i))
		i = j
	}
	return keys, counts
}

// finalizeGrid emits the matrix by scanning the occupancy bitmap — set
// bits come out in ascending (src, dst) order — merging any out-of-band
// overflow in place, and zeroes the scratch behind itself before
// returning it to the free list.
func (b *Builder) finalizeGrid(m *Matrix, keys []uint64, kcounts []uint32) {
	grid, bm := b.scr.grid, b.scr.bm
	cells := b.p * b.stride
	words := (cells + 63) / 64
	pairs := len(keys)
	for w := 0; w < words; w++ {
		pairs += bits.OnesCount64(bm[w])
	}
	if b.stride == b.p {
		// Full grid: the global bit order is already (src, dst) order
		// and there is no overflow.
		if b.p*b.p <= denseCells {
			m.dense = make([]uint32, b.p*b.p)
			m.pairs = pairs
			for w := 0; w < words; w++ {
				word := bm[w]
				if word == 0 {
					continue
				}
				bm[w] = 0
				for word != 0 {
					idx := w<<6 + bits.TrailingZeros64(word)
					word &= word - 1
					n := grid[idx]
					grid[idx] = 0
					m.dense[idx] = n
					m.events += uint64(n)
				}
			}
		} else {
			m.rowStart = append(m.rowStart, 0)
			m.dsts = make([]int32, 0, pairs)
			m.counts = make([]uint32, 0, pairs)
			curSrc, rowBase, rowEnd := int32(0), 0, b.stride
			open := false
			for w := 0; w < words; w++ {
				word := bm[w]
				if word == 0 {
					continue
				}
				bm[w] = 0
				for word != 0 {
					idx := w<<6 + bits.TrailingZeros64(word)
					word &= word - 1
					if idx >= rowEnd {
						if open {
							m.rowStart = append(m.rowStart, int32(len(m.dsts)))
							open = false
						}
						for idx >= rowEnd {
							curSrc++
							rowBase = rowEnd
							rowEnd += b.stride
						}
					}
					if !open {
						m.rowSrc = append(m.rowSrc, curSrc)
						open = true
					}
					n := grid[idx]
					grid[idx] = 0
					m.dsts = append(m.dsts, int32(idx-rowBase))
					m.counts = append(m.counts, n)
					m.events += uint64(n)
				}
			}
			if open {
				m.rowStart = append(m.rowStart, int32(len(m.dsts)))
			}
			m.pairs = len(m.dsts)
		}
	} else {
		// Banded grid: walk row by row (band strides are multiples of
		// 64), interleaving overflow pairs on the correct side of the
		// band to keep dst ascending within each row.
		m.rowStart = append(m.rowStart, 0)
		m.dsts = make([]int32, 0, pairs)
		m.counts = make([]uint32, 0, pairs)
		rowWords := b.stride / 64
		k := 0
		for src := int32(0); src < int32(b.p); src++ {
			before := len(m.dsts)
			for k < len(keys) && int32(keys[k]>>32) == src && int32(keys[k]) < src {
				m.dsts = append(m.dsts, int32(keys[k]))
				m.counts = append(m.counts, kcounts[k])
				m.events += uint64(kcounts[k])
				k++
			}
			base := int(src) * b.stride
			w0 := base / 64
			for rw := 0; rw < rowWords; rw++ {
				word := bm[w0+rw]
				if word == 0 {
					continue
				}
				bm[w0+rw] = 0
				for word != 0 {
					idx := (w0+rw)<<6 + bits.TrailingZeros64(word)
					word &= word - 1
					n := grid[idx]
					grid[idx] = 0
					m.dsts = append(m.dsts, src+int32(idx-base))
					m.counts = append(m.counts, n)
					m.events += uint64(n)
				}
			}
			for k < len(keys) && int32(keys[k]>>32) == src {
				m.dsts = append(m.dsts, int32(keys[k]))
				m.counts = append(m.counts, kcounts[k])
				m.events += uint64(kcounts[k])
				k++
			}
			if len(m.dsts) > before {
				m.rowSrc = append(m.rowSrc, src)
				m.rowStart = append(m.rowStart, int32(len(m.dsts)))
			}
		}
		m.pairs = len(m.dsts)
	}
	putScratch(b.scr)
	b.scr = nil
}

// finalizeOverflow emits the sorted CSR form straight from the merged
// overflow log — the fallback for rank counts whose grid would not fit
// the scratch budget.
func (b *Builder) finalizeOverflow(m *Matrix, keys []uint64, kcounts []uint32) {
	m.pairs = len(keys)
	m.rowStart = append(m.rowStart, 0)
	m.dsts = make([]int32, len(keys))
	m.counts = make([]uint32, len(keys))
	copy(m.counts, kcounts)
	for i, k := range keys {
		src := int32(k >> 32)
		if len(m.rowSrc) == 0 || m.rowSrc[len(m.rowSrc)-1] != src {
			m.rowSrc = append(m.rowSrc, src)
			m.rowStart = append(m.rowStart, int32(i))
		}
		m.rowStart[len(m.rowStart)-1] = int32(i + 1)
		m.dsts[i] = int32(uint32(k))
		m.events += uint64(kcounts[i])
	}
}

// computeDiag tallies the diagonal event total once at construction:
// a dense diagonal walk, or one binary search per CSR row (dsts are
// ascending within a row).
func (m *Matrix) computeDiag() {
	m.diag = 0
	if m.dense != nil {
		for src := 0; src < m.p; src++ {
			m.diag += uint64(m.dense[src*m.p+src])
		}
		return
	}
	for r, src := range m.rowSrc {
		lo, hi := m.rowStart[r], m.rowStart[r+1]
		row := m.dsts[lo:hi]
		i := sort.Search(len(row), func(i int) bool { return row[i] >= src })
		if i < len(row) && row[i] == src {
			m.diag += uint64(m.counts[int(lo)+i])
		}
	}
}

// BuildSerial aggregates a visitor-produced event stream into a Matrix
// on the calling goroutine — the convenience path for event sources
// that are not worth sharding.
func BuildSerial(p int, visit func(emit func(src, dst int32))) *Matrix {
	b := NewBuilder(p, 1)
	s := b.Shard(0)
	visit(func(src, dst int32) { s.Add(src, dst) })
	return b.Finalize()
}
