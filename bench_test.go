// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per experiment, at scaled-down parameters so the
// suite completes quickly. Run the paper-scale versions with
// cmd/acdbench -full; EXPERIMENTS.md records those results.
package sfcacd_test

import (
	"context"
	"testing"

	"sfcacd"
	"sfcacd/internal/acd"
	"sfcacd/internal/experiments"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/keynav"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/serve"
	"sfcacd/internal/topology"
)

// benchParams is the shared scaled-down configuration.
var benchParams = experiments.Params{
	Particles: 4000,
	Order:     8,
	ProcOrder: 4,
	Radius:    1,
	Trials:    1,
	Seed:      2013,
}

// BenchmarkFig1CurveGallery measures curve enumeration — the work
// behind Figure 1's renderings (16x16 paths of the four curves).
func BenchmarkFig1CurveGallery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range sfcacd.Curves() {
			for d := uint64(0); d < 256; d++ {
				p := c.Point(4, d)
				if c.Index(4, p) != d {
					b.Fatal("round trip failed")
				}
			}
		}
	}
}

// BenchmarkFig2Distributions measures drawing the sample clouds of
// Figure 2 from each of the three distributions.
func BenchmarkFig2Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sfcacd.NewRand(uint64(i))
		for _, s := range sfcacd.Distributions() {
			if _, err := sfcacd.SampleUnique(s, r, 8, 1000); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3ParticleOrdering measures ordering an exponential
// sample along each curve, the operation Figure 3 visualizes.
func BenchmarkFig3ParticleOrdering(b *testing.B) {
	r := sfcacd.NewRand(3)
	pts, err := sfcacd.SampleUnique(sfcacd.Exponential, r, 10, 10000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sfcacd.Curves() {
			if _, err := sfcacd.Assign(pts, c, 10, 64); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5aANNS regenerates Figure 5(a): classic ANNS (radius 1)
// across resolutions for all four curves.
func BenchmarkFig5aANNS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(context.Background(), 1, 6, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5bANNSLargeRadius regenerates Figure 5(b): the
// generalized stretch at radius 6.
func BenchmarkFig5bANNSLargeRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(context.Background(), 1, 6, 6, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1NFICombos regenerates Table I: the 16 particle x
// processor SFC combinations under the near-field model, for all
// three distributions.
func BenchmarkTable1NFICombos(b *testing.B) {
	// RunTable12 computes both tables in one pass; Table II's cost is
	// benchmarked separately below via the far-field-only path.
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable12(context.Background(), benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2FFICombos isolates the far-field (Table II) model:
// one assignment evaluated against the four processor-order tori.
func BenchmarkTable2FFICombos(b *testing.B) {
	r := sfcacd.NewRand(5)
	pts, err := sfcacd.SampleUnique(sfcacd.Uniform, r, benchParams.Order, benchParams.Particles)
	if err != nil {
		b.Fatal(err)
	}
	a, err := sfcacd.Assign(pts, sfcacd.Hilbert, benchParams.Order, benchParams.P())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sfcacd.Curves() {
			torus := sfcacd.NewTorus(benchParams.ProcOrder, c)
			sfcacd.FFI(a, torus, sfcacd.FFIOptions{})
		}
	}
}

// BenchmarkFig6Topologies regenerates Figure 6: NFI and FFI across the
// six topologies with the same SFC in both roles.
func BenchmarkFig6Topologies(b *testing.B) {
	p := benchParams
	p.Radius = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ProcessorSweep regenerates Figure 7: ACD versus
// processor count on the torus.
func BenchmarkFig7ProcessorSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(context.Background(), benchParams, []uint{2, 3, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRadiusSweep regenerates the §VI-C radius study.
func BenchmarkRadiusSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRadiusSweep(context.Background(), benchParams, []int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrimitives regenerates the §VII primitive table.
func BenchmarkPrimitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunPrimitives(4, 0)
	}
}

// BenchmarkContention regenerates the contention extension study.
func BenchmarkContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunContention(context.Background(), benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNBodyFMM measures the fast multipole solver on 10,000
// particles — the application side of the paper's model.
func BenchmarkNBodyFMM(b *testing.B) {
	sys := randomNBody(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sfcacd.SolveFMM(sys, sfcacd.FMMSolverOptions{Terms: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNBodyAdaptiveFMM measures the adaptive (dual tree
// traversal) solver on the same system as BenchmarkNBodyFMM.
func BenchmarkNBodyAdaptiveFMM(b *testing.B) {
	sys := randomNBody(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sfcacd.SolveAdaptiveFMM(sys, sfcacd.FMMSolverOptions{Terms: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNBodyDirect measures the O(n^2) baseline (smaller n: the
// quadratic cost dominates the suite otherwise — compare ns/particle).
func BenchmarkNBodyDirect(b *testing.B) {
	sys := randomNBody(4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sfcacd.SolveDirect(sys, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func randomNBody(n int) sfcacd.NBodySystem {
	r := sfcacd.NewRand(9)
	sys := sfcacd.NBodySystem{Pos: make([]complex128, n), Q: make([]float64, n)}
	for i := 0; i < n; i++ {
		sys.Pos[i] = complex(r.Float64(), r.Float64())
		sys.Q[i] = 1
		if i%2 == 1 {
			sys.Q[i] = -1
		}
	}
	return sys
}

// BenchmarkDynamicTimesteps regenerates the dynamic reordering study
// (§VI-A's "no incentive to reorder between iterations" observation).
func BenchmarkDynamicTimesteps(b *testing.B) {
	p := benchParams
	p.Particles = 2000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDynamic(context.Background(), p, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThreeDValidation regenerates the 3D extension study
// (future-work item ii).
func BenchmarkThreeDValidation(b *testing.B) {
	p := experiments.ThreeDDefault
	p.Particles = 3000
	p.Order = 5
	p.ANNSOrder = 3
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunThreeD(context.Background(), p, 0, keynav.EngineTree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHilbertIndex measures the hot curve-indexing path used by
// every experiment.
func BenchmarkHilbertIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := sfcacd.Pt(uint32(i)&1023, uint32(i>>10)&1023)
		sfcacd.Hilbert.Index(10, p)
	}
}

// BenchmarkTorusDistance measures the hot distance path.
func BenchmarkTorusDistance(b *testing.B) {
	torus := sfcacd.NewTorus(8, sfcacd.Hilbert)
	p := torus.P()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		torus.Distance(i%p, (i*7)%p)
	}
}

// --- Communication-matrix path (PR: topology-independent matrices) ---

// commMatFixture builds one scaled assignment, its representative tree,
// and the four processor-order tori the tables sweep.
func commMatFixture(b *testing.B) (*acd.Assignment, *quadtree.RankTree, []topology.Topology) {
	b.Helper()
	r := sfcacd.NewRand(7)
	pts, err := sfcacd.SampleUnique(sfcacd.Uniform, r, benchParams.Order, benchParams.Particles)
	if err != nil {
		b.Fatal(err)
	}
	a, err := acd.Assign(pts, sfcacd.Hilbert, benchParams.Order, benchParams.P())
	if err != nil {
		b.Fatal(err)
	}
	tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
	var topos []topology.Topology
	for _, c := range sfcacd.Curves() {
		topos = append(topos, topology.NewTorus(benchParams.ProcOrder, c))
	}
	return a, tree, topos
}

// BenchmarkCommMatBuild measures aggregating the near- and far-field
// event streams into communication matrices — the one-traversal side of
// the contraction split.
func BenchmarkCommMatBuild(b *testing.B) {
	a, tree, _ := commMatFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fmmmodel.NFIMatrix(a, fmmmodel.NFIOptions{Radius: benchParams.Radius})
		fmmmodel.FFIMatricesFromTree(tree, a.P, 0)
	}
}

// BenchmarkCommMatContract measures the per-topology side: contracting
// prebuilt matrices against the four tori through distance tables.
func BenchmarkCommMatContract(b *testing.B) {
	a, tree, topos := commMatFixture(b)
	nfi := fmmmodel.NFIMatrix(a, fmmmodel.NFIOptions{Radius: benchParams.Radius})
	ffi := fmmmodel.FFIMatricesFromTree(tree, a.P, 0)
	tables := make([]*topology.DistanceTable, len(topos))
	for i, topo := range topos {
		tables[i] = topology.NewDistanceTable(topo)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dt := range tables {
			var n, interp, il acd.Accumulator
			nfi.ContractTableSym(dt, &n)
			ffi.Interpolation.ContractTable(dt, &interp)
			ffi.InteractionList.ContractTableSym(dt, &il)
		}
	}
}

// BenchmarkTable12MatrixPath measures the multi-topology accumulation
// at the heart of Tables I/II: one shared traversal contracted against
// all four processor-order tori.
func BenchmarkTable12MatrixPath(b *testing.B) {
	a, tree, topos := commMatFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fmmmodel.NFIMulti(a, topos, fmmmodel.NFIOptions{Radius: benchParams.Radius})
		fmmmodel.FFIMultiFromTree(tree, topos, fmmmodel.FFIOptions{})
	}
}

// BenchmarkServeCacheHit measures answering a warm request through the
// serving layer: key derivation, cache lookup, and entry replay. The
// acceptance target is well under a millisecond for the scaled
// table12 result.
func BenchmarkServeCacheHit(b *testing.B) {
	s := serve.New(serve.Options{Workers: 2})
	if _, err := s.Do(context.Background(), "table12", benchParams); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Do(context.Background(), "table12", benchParams)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status != serve.StatusHit {
			b.Fatalf("status %q, want hit", resp.Status)
		}
	}
}

// BenchmarkServeColdMiss measures the full compute-and-cache path by
// varying the seed so every iteration is a distinct content address.
func BenchmarkServeColdMiss(b *testing.B) {
	s := serve.New(serve.Options{Workers: 2})
	p := benchParams
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i) + 1
		resp, err := s.Do(context.Background(), "table12", p)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status != serve.StatusMiss {
			b.Fatalf("status %q, want miss", resp.Status)
		}
	}
}
