package experiments

import (
	"context"
	"fmt"

	"sfcacd/internal/clustering"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
)

// ClusterResult holds the companion clustering-metric study: the
// average number of clusters random square range queries touch under
// each curve. The paper's narrative contrast: Hilbert wins here while
// losing under ANNS — metrics disagree, which is why ACD (modeling the
// actual application) matters.
type ClusterResult struct {
	// QuerySides are the query window sides swept.
	QuerySides []uint32
	// Curves are the curve names.
	Curves []string
	// Avg[c][q] is the mean cluster count of curve c at query side q.
	Avg [][]float64
}

// SeriesTable renders the study.
func (r ClusterResult) SeriesTable() *tablefmt.SeriesTable {
	st := &tablefmt.SeriesTable{
		Title:  "Clustering metric: mean clusters per random square query",
		XLabel: "query side",
	}
	for _, q := range r.QuerySides {
		st.X = append(st.X, float64(q))
	}
	for c, name := range r.Curves {
		st.Series = append(st.Series, tablefmt.Series{Name: name, Y: r.Avg[c]})
	}
	return st
}

// RunClustering estimates the clustering metric for each curve over
// random square queries at the given resolution order, one sweep cell
// per curve x query-side pair (each cell owns its own rng stream).
// workers caps the sweep pool; 0 means GOMAXPROCS.
func RunClustering(ctx context.Context, order uint, querySides []uint32, trials int, seed uint64, workers int) (ClusterResult, error) {
	if len(querySides) == 0 || trials < 1 || order < 1 || order > 12 {
		return ClusterResult{}, fmt.Errorf("experiments: bad clustering parameters")
	}
	curves := sfc.All()
	res := ClusterResult{
		QuerySides: append([]uint32(nil), querySides...),
		Curves:     curveNames(curves),
		Avg:        zeroRect(len(curves), len(querySides)),
	}
	nq := len(querySides)
	cells := len(curves) * nq
	err := runCells(ctx, sweepPool(workers, cells), cells, func(cell int) error {
		c := cell / nq
		q := cell % nq
		r := rng.New(seed + uint64(q)*1000 + uint64(c))
		res.Avg[c][q] = clustering.AverageClusters(curves[c], order, querySides[q], trials, r)
		return nil
	})
	if err != nil {
		return ClusterResult{}, err
	}
	return res, nil
}
