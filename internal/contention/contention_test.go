package contention

import (
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

func TestRouteHopsMatchDistanceOnMesh(t *testing.T) {
	m := topology.NewMesh(3, sfc.Hilbert)
	tr := NewTracker(m)
	var wantHops uint64
	for a := 0; a < m.P(); a += 3 {
		for b := 0; b < m.P(); b += 5 {
			tr.Route(int32(a), int32(b))
			wantHops += uint64(m.Distance(a, b))
		}
	}
	if tr.Hops != wantHops {
		t.Fatalf("hops %d, sum of distances %d", tr.Hops, wantHops)
	}
}

func TestRouteHopsMatchDistanceOnTorus(t *testing.T) {
	m := topology.NewTorus(3, sfc.Gray)
	tr := NewTracker(m)
	var wantHops uint64
	for a := 0; a < m.P(); a += 7 {
		for b := 0; b < m.P(); b++ {
			tr.Route(int32(a), int32(b))
			wantHops += uint64(m.Distance(a, b))
		}
	}
	if tr.Hops != wantHops {
		t.Fatalf("torus XY routing not minimal: hops %d, distances %d", tr.Hops, wantHops)
	}
}

func TestZeroHopMessages(t *testing.T) {
	m := topology.NewMesh(2, sfc.Hilbert)
	tr := NewTracker(m)
	tr.Route(3, 3)
	s := tr.Stats()
	if s.Messages != 1 || s.Hops != 0 || s.UsedLinks != 0 || s.MaxLinkLoad != 0 {
		t.Fatalf("zero-hop stats %+v", s)
	}
}

func TestSingleRouteLoads(t *testing.T) {
	// Route one message across a 4x4 mesh corner to corner: 6 links,
	// each loaded once.
	m := topology.NewMesh(2, sfc.RowMajor)
	tr := NewTracker(m)
	// RowMajor placement: rank = x*4+y, so rank 0 at (0,0), rank 15 at
	// (3,3).
	tr.Route(0, 15)
	s := tr.Stats()
	if s.Hops != 6 || s.UsedLinks != 6 || s.MaxLinkLoad != 1 {
		t.Fatalf("single route stats %+v", s)
	}
	if s.MeanLinkLoad != 1 {
		t.Fatalf("mean link load %f", s.MeanLinkLoad)
	}
}

func TestOppositeRoutesUseDistinctLinks(t *testing.T) {
	// Links are directed: a->b and b->a along a line share no links.
	m := topology.NewMesh(2, sfc.RowMajor)
	tr := NewTracker(m)
	a := int32(0)
	b := int32(m.RankAt(m.Coord(0)) + 3*4) // (3,0): 3 hops in +x? rank x*4+y => rank 12
	tr.Route(a, b)
	tr.Route(b, a)
	s := tr.Stats()
	if s.MaxLinkLoad != 1 {
		t.Fatalf("opposite routes collided: %+v", s)
	}
	if s.UsedLinks != 6 {
		t.Fatalf("used links %d, want 6", s.UsedLinks)
	}
}

func TestConvergingRoutesContend(t *testing.T) {
	// Many sources sending to one corner along a row must share the
	// final link.
	m := topology.NewMesh(2, sfc.RowMajor)
	tr := NewTracker(m)
	// Ranks 4, 8, 12 are at (1,0), (2,0), (3,0); all route to rank 0 at
	// (0,0) along the -x row.
	tr.Route(4, 0)
	tr.Route(8, 0)
	tr.Route(12, 0)
	s := tr.Stats()
	if s.MaxLinkLoad != 3 {
		t.Fatalf("converging max load %d, want 3 on the last link", s.MaxLinkLoad)
	}
}

func TestHilbertPlacementReducesNFICongestion(t *testing.T) {
	// The headline use of the extension: for the FMM near field on a
	// mesh, Hilbert particle+processor ordering should yield both lower
	// total hops and a less congested hottest link than row-major.
	const order = 7
	r := rng.New(1)
	pts, err := dist.SampleUnique(dist.Uniform, r, order, 2000)
	if err != nil {
		t.Fatal(err)
	}
	run := func(c sfc.Curve) Stats {
		a, err := acd.Assign(pts, c, order, 64)
		if err != nil {
			t.Fatal(err)
		}
		m := topology.NewMesh(3, c)
		tr := NewTracker(m)
		fmmmodel.VisitNFIPairs(a, fmmmodel.NFIOptions{Radius: 1}, tr.Route)
		return tr.Stats()
	}
	h := run(sfc.Hilbert)
	rm := run(sfc.RowMajor)
	if h.Hops >= rm.Hops {
		t.Errorf("hilbert hops %d >= rowmajor %d", h.Hops, rm.Hops)
	}
	if h.MaxLinkLoad >= rm.MaxLinkLoad {
		t.Errorf("hilbert max link load %d >= rowmajor %d", h.MaxLinkLoad, rm.MaxLinkLoad)
	}
}

func TestVisitNFIPairsMatchesAccumulator(t *testing.T) {
	const order = 5
	r := rng.New(2)
	pts, err := dist.SampleUnique(dist.Normal, r, order, 150)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Morton, order, 16)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewTorus(2, sfc.Hilbert)
	var sum, count uint64
	fmmmodel.VisitNFIPairs(a, fmmmodel.NFIOptions{Radius: 2}, func(src, dst int32) {
		sum += uint64(topo.Distance(int(src), int(dst)))
		count++
	})
	want := fmmmodel.NFI(a, topo, fmmmodel.NFIOptions{Radius: 2})
	if sum != want.Sum || count != want.Count {
		t.Fatalf("visitor sum=%d count=%d, accumulator %+v", sum, count, want)
	}
}

func TestVisitFFIPairsMatchesAccumulator(t *testing.T) {
	const order = 5
	r := rng.New(3)
	pts, err := dist.SampleUnique(dist.Exponential, r, order, 150)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 16)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewMesh(2, sfc.Morton)
	var sum, count uint64
	fmmmodel.VisitFFIPairs(a, func(src, dst int32) {
		sum += uint64(topo.Distance(int(src), int(dst)))
		count++
	})
	want := fmmmodel.FFI(a, topo, fmmmodel.FFIOptions{}).Total()
	if sum != want.Sum || count != want.Count {
		t.Fatalf("visitor sum=%d count=%d, accumulator %+v", sum, count, want)
	}
}
