package topology

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sfcacd/internal/sfc"
)

// randomTopology builds one of the families with a size derived from
// the seed byte.
func randomTopology(kind, size byte) Topology {
	switch kind % 6 {
	case 0:
		return NewBus(int(size%32) + 1)
	case 1:
		return NewRing(int(size%32) + 1)
	case 2:
		return NewMesh(uint(size%3)+1, sfc.Hilbert)
	case 3:
		return NewTorus(uint(size%3)+1, sfc.Gray)
	case 4:
		return NewHypercube(uint(size % 6))
	default:
		return NewQuadtreeNet(uint(size%3) + 1)
	}
}

// TestQuickMetricAxioms checks identity, symmetry, and the triangle
// inequality on random topologies and random rank triples.
func TestQuickMetricAxioms(t *testing.T) {
	f := func(kind, size byte, a, b, c uint16) bool {
		topo := randomTopology(kind, size)
		p := topo.P()
		x, y, z := int(a)%p, int(b)%p, int(c)%p
		if topo.Distance(x, x) != 0 {
			return false
		}
		if topo.Distance(x, y) != topo.Distance(y, x) {
			return false
		}
		if x != y && topo.Distance(x, y) <= 0 {
			return false
		}
		return topo.Distance(x, y) <= topo.Distance(x, z)+topo.Distance(z, y)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickGridDistanceInvariantUnderPlacementForSamePositions: the
// placement curve permutes ranks but never changes the multiset of
// pairwise distances (it is a relabeling of the same physical grid).
func TestQuickPlacementIsRelabeling(t *testing.T) {
	f := func(seed byte) bool {
		order := uint(seed%2) + 1
		a := NewTorus(order, sfc.Hilbert)
		b := NewTorus(order, sfc.RowMajor)
		// Sum of all pairwise distances is placement-invariant.
		var sa, sb int
		for i := 0; i < a.P(); i++ {
			for j := 0; j < a.P(); j++ {
				sa += a.Distance(i, j)
				sb += b.Distance(i, j)
			}
		}
		return sa == sb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestQuickHypercubeDistanceAlgebra: d(a,b) = popcount(a^b) implies
// d(a^m, b^m) = d(a,b) for any mask m (translation invariance).
func TestQuickHypercubeTranslationInvariant(t *testing.T) {
	h := NewHypercube(10)
	f := func(a, b, m uint16) bool {
		x, y, mask := int(a)%h.P(), int(b)%h.P(), int(m)%h.P()
		return h.Distance(x, y) == h.Distance(x^mask, y^mask)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickQuadtreeUltrametric: the quadtree network distance is an
// ultrametric up to the factor-2 hop doubling:
// d(a,c) <= max(d(a,b), d(b,c)).
func TestQuickQuadtreeUltrametric(t *testing.T) {
	q := NewQuadtreeNet(5)
	f := func(a, b, c uint32) bool {
		x, y, z := int(a)%q.P(), int(b)%q.P(), int(c)%q.P()
		dxz := q.Distance(x, z)
		dxy := q.Distance(x, y)
		dyz := q.Distance(y, z)
		max := dxy
		if dyz > max {
			max = dyz
		}
		return dxz <= max
	}
	cfg := &quick.Config{
		MaxCount: 1000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(uint32(r.Int63n(int64(q.P()))))
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTorusBoundedByMesh: on the same placement the torus never
// exceeds the mesh distance and never beats it by more than the wrap
// saving.
func TestQuickTorusBoundedByMesh(t *testing.T) {
	mesh := NewMesh(3, sfc.Morton)
	torus := NewTorus(3, sfc.Morton)
	f := func(a, b uint16) bool {
		x, y := int(a)%mesh.P(), int(b)%mesh.P()
		dt, dm := torus.Distance(x, y), mesh.Distance(x, y)
		return dt <= dm && dm <= dt*int(mesh.Side())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
