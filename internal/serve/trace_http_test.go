package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sfcacd/internal/obs"
	"sfcacd/internal/obs/tracestore"
)

// keepAllStore retains every offered trace deterministically, so tests
// can fetch any request's trace back regardless of status or speed.
func keepAllStore() *tracestore.Store {
	return tracestore.New(tracestore.Options{Seed: 1, SampleProb: 1})
}

func get(h http.Handler, url string, hdr ...string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, url, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	s := New(Options{Workers: 1})
	h := NewHandler(s)
	if rec := get(h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d", rec.Code)
	}
	s.SetDraining()
	rec := get(h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error != "draining" {
		t.Errorf("drain body = %q (%v)", rec.Body, err)
	}
}

func TestTraceIDHonoredAndGenerated(t *testing.T) {
	h := NewHandler(New(Options{Workers: 1, Traces: keepAllStore()}))

	req := httptest.NewRequest(http.MethodGet, "/v1/experiments", nil)
	req.Header.Set("X-Trace-Id", "client-supplied-id_01")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Trace-Id"); got != "client-supplied-id_01" {
		t.Errorf("honored id = %q", got)
	}

	// No (or invalid) client id: the server mints a 32-hex one.
	for _, hdr := range []string{"", "bad id with spaces", strings.Repeat("x", 200)} {
		req = httptest.NewRequest(http.MethodGet, "/v1/experiments", nil)
		if hdr != "" {
			req.Header.Set("X-Trace-Id", hdr)
		}
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		id := rec.Header().Get("X-Trace-Id")
		if len(id) != 32 {
			t.Errorf("header %q: generated id %q is not 32 hex chars", hdr, id)
		}
	}

	// /debug/ endpoints are exempt: reading traces mints no traces.
	if rec := get(h, "/debug/traces"); rec.Header().Get("X-Trace-Id") != "" {
		t.Error("/debug/traces response carries a trace id")
	}
}

func TestTraceCaptureEndToEnd(t *testing.T) {
	st := keepAllStore()
	h := NewHandler(New(Options{Workers: 2, Traces: st}))

	rec := postExperiment(t, h, "/v1/experiments/table12", tinyBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST status %d: %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get("X-Trace-Id")
	if id == "" {
		t.Fatal("response missing X-Trace-Id")
	}

	// The index lists the request, newest first.
	rec = get(h, "/debug/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", rec.Code)
	}
	var index struct {
		Traces []tracestore.IndexEntry `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &index); err != nil {
		t.Fatal(err)
	}
	if len(index.Traces) == 0 || index.Traces[0].ID != id {
		t.Fatalf("index = %+v, want newest entry %s", index.Traces, id)
	}
	if index.Traces[0].Status != http.StatusOK {
		t.Errorf("indexed status = %d", index.Traces[0].Status)
	}

	// The full tree carries the request's cache status, experiment,
	// and the phase spans of the computation it led.
	rec = get(h, "/debug/traces/"+id)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces/%s status %d", id, rec.Code)
	}
	var snap obs.TraceSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Complete || snap.Status != http.StatusOK {
		t.Errorf("trace complete/status = %v/%d", snap.Complete, snap.Status)
	}
	if snap.Attrs["cache"] != string(StatusMiss) {
		t.Errorf("cache attr = %q, want %q", snap.Attrs["cache"], StatusMiss)
	}
	if snap.Attrs["experiment"] != "table12" {
		t.Errorf("experiment attr = %q", snap.Attrs["experiment"])
	}
	for _, phase := range []string{"cache.lookup", "wait", "compute", "queue.wait", "sweep"} {
		if findSpan(snap.Spans, phase) == nil {
			t.Errorf("trace missing %q span; tree: %s", phase, rec.Body)
		}
	}
	sweep := findSpan(snap.Spans, "sweep")
	if sweep != nil && sweep.Attrs["cells"] == "" {
		t.Errorf("sweep span missing cells annotation: %+v", sweep.Attrs)
	}

	// A second identical request is a cache hit with its own trace.
	rec = postExperiment(t, h, "/v1/experiments/table12", tinyBody)
	hitID := rec.Header().Get("X-Trace-Id")
	if hitID == id {
		t.Fatal("two requests shared a trace id")
	}
	rec = get(h, "/debug/traces/"+hitID)
	if rec.Code != http.StatusOK {
		t.Fatalf("hit trace status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Attrs["cache"] != string(StatusHit) {
		t.Errorf("hit trace cache attr = %q", snap.Attrs["cache"])
	}

	// Unknown ids 404.
	if rec = get(h, "/debug/traces/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace id status = %d, want 404", rec.Code)
	}
}

// findSpan walks a span forest for a phase name at any depth.
func findSpan(spans []obs.PhaseSnapshot, name string) *obs.PhaseSnapshot {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if p := findSpan(spans[i].Children, name); p != nil {
			return p
		}
	}
	return nil
}

// TestErrorTraceRecordsClass: a failed request's trace carries the
// error class the metrics count it under.
func TestErrorTraceRecordsClass(t *testing.T) {
	st := keepAllStore()
	h := NewHandler(New(Options{Workers: 1, Traces: st}))
	rec := postExperiment(t, h, "/v1/experiments/table12", `{"Trials":-1}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	id := rec.Header().Get("X-Trace-Id")
	tr, ok := st.Get(id)
	if !ok {
		t.Fatal("400 trace not retained by a keep-all store")
	}
	attrs := tr.Attrs()
	if attrs["error_class"] != "invalid_params" {
		t.Errorf("error_class attr = %q", attrs["error_class"])
	}
}

func TestErrorResponsesCarryContentLength(t *testing.T) {
	s := New(Options{Workers: 1, Traces: keepAllStore()})
	h := NewHandler(s)
	urls := []struct {
		method, url, body string
		want              int
	}{
		{http.MethodPost, "/v1/experiments/nonesuch", "", http.StatusNotFound},
		{http.MethodPost, "/v1/experiments/table12", `{"Trials":-1}`, http.StatusBadRequest},
		{http.MethodGet, "/debug/traces/absent", "", http.StatusNotFound},
	}
	s.SetDraining()
	urls = append(urls, struct {
		method, url, body string
		want              int
	}{http.MethodGet, "/readyz", "", http.StatusServiceUnavailable})

	for _, tc := range urls {
		req := httptest.NewRequest(tc.method, tc.url, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.url, rec.Code, tc.want)
			continue
		}
		cl := rec.Header().Get("Content-Length")
		if cl == "" {
			t.Errorf("%s %s: error response missing Content-Length", tc.method, tc.url)
			continue
		}
		if n, _ := strconv.Atoi(cl); n != rec.Body.Len() {
			t.Errorf("%s %s: Content-Length %s != body %d", tc.method, tc.url, cl, rec.Body.Len())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: error Content-Type = %q", tc.method, tc.url, ct)
		}
	}
}

// TestRequestLatencyHistogramLabels: the per-request latency histogram
// appears per (cache, experiment) label pair and agrees with the
// request count.
func TestRequestLatencyHistogramLabels(t *testing.T) {
	st := keepAllStore()
	h := NewHandler(New(Options{Workers: 1, Traces: st}))
	postExperiment(t, h, "/v1/experiments/table12", tinyBody)
	postExperiment(t, h, "/v1/experiments/table12", tinyBody)

	snap := obs.Default().Snapshot()
	missName := obs.LabeledName("serve.request_latency_ns", "cache", "miss", "experiment", "table12")
	hitName := obs.LabeledName("serve.request_latency_ns", "cache", "hit", "experiment", "table12")
	if hs, ok := snap.Histograms[missName]; !ok || hs.Count == 0 {
		t.Errorf("miss latency histogram absent or empty (%v)", ok)
	}
	if hs, ok := snap.Histograms[hitName]; !ok || hs.Count == 0 {
		t.Errorf("hit latency histogram absent or empty (%v)", ok)
	}

	// And the deadline 504 path feeds the timeout error class counter.
	s := New(Options{Workers: 1, ComputeTimeout: time.Nanosecond, Traces: keepAllStore()})
	slow := NewHandler(s)
	rec := postExperiment(t, slow, "/v1/experiments/table12", `{"Particles":4000,"Trials":2,"Seed":99}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d, want 504 (%s)", rec.Code, rec.Body)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("504 body is not an errorBody: %v", err)
	}
	if eb.Timeout == "" {
		t.Error("504 body missing timeout field")
	}
	snap = obs.Default().Snapshot()
	if snap.Counters[obs.LabeledName("serve.errors", "class", "timeout")] == 0 {
		t.Error("timeout error class counter not incremented")
	}
}
