package resultcache

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sfcacd/internal/faultinject"
	"sfcacd/internal/obs"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	store, err := OpenDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor("table12", "params", "v1")
	if _, ok, err := store.Get(key); err != nil || ok {
		t.Fatalf("Get on empty store = ok=%v err=%v, want miss with nil error", ok, err)
	}
	e := Entry{Key: key, Experiment: "table12",
		Params:   json.RawMessage(`{"Particles":100}`),
		Result:   json.RawMessage(`[{"curve":"hilbert"}]`),
		Manifest: json.RawMessage(`{"schema":"x"}`)}
	if err := store.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if got.Experiment != e.Experiment || string(got.Params) != string(e.Params) ||
		string(got.Result) != string(e.Result) || string(got.Manifest) != string(e.Manifest) {
		t.Errorf("round trip changed the entry: %+v", got)
	}

	// Overwrite refreshes in place.
	e.Result = json.RawMessage(`[]`)
	if err := store.Put(e); err != nil {
		t.Fatal(err)
	}
	got, _, _ = store.Get(key)
	if string(got.Result) != "[]" {
		t.Errorf("overwrite did not replace the entry: %s", got.Result)
	}

	// No stray temp files after successful writes.
	matches, _ := filepath.Glob(filepath.Join(store.Dir(), "*", "*.tmp"))
	if len(matches) != 0 {
		t.Errorf("stray temp files left behind: %v", matches)
	}
}

func TestDiskStoreShardedLayout(t *testing.T) {
	store, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor("fig6", "params", "v1")
	if err := store.Put(Entry{Key: key}); err != nil {
		t.Fatal(err)
	}
	hexKey := key.String()
	want := filepath.Join(store.Dir(), hexKey[:2], hexKey+".json")
	if _, err := os.Stat(want); err != nil {
		t.Errorf("entry not at sharded path %s: %v", want, err)
	}
}

func TestDiskStoreCorruptEntry(t *testing.T) {
	store, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor("fig7", "params", "v1")
	hexKey := key.String()
	dir := filepath.Join(store.Dir(), hexKey[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, hexKey+".json"), []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	quarBefore := obs.GetCounter("resultcache.disk_quarantined").Value()
	if _, ok, err := store.Get(key); err == nil || ok {
		t.Fatalf("corrupt entry Get = ok=%v err=%v, want error", ok, err)
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("error %q does not identify corruption", err)
	}

	// The bad file is quarantined: the error happens once, then the key
	// misses cleanly forever after.
	if got := obs.GetCounter("resultcache.disk_quarantined").Value() - quarBefore; got != 1 {
		t.Errorf("resultcache.disk_quarantined delta = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, hexKey+".json"+quarantineSuffix)); err != nil {
		t.Errorf("corrupt entry was not renamed aside: %v", err)
	}
	if _, ok, err := store.Get(key); err != nil || ok {
		t.Errorf("Get after quarantine = ok=%v err=%v, want clean miss", ok, err)
	}
}

func TestDiskStoreKeyMismatch(t *testing.T) {
	store, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Store a valid entry, then copy its file under a different key's
	// path: the self-describing key must be verified on load.
	good := Entry{Key: KeyFor("a", "p", "v"), Experiment: "a"}
	if err := store.Put(good); err != nil {
		t.Fatal(err)
	}
	wrong := KeyFor("b", "p", "v")
	src, _ := os.ReadFile(store.path(good.Key))
	dst := store.path(wrong)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store.Get(wrong); err == nil || ok {
		t.Fatalf("key-mismatched entry Get = ok=%v err=%v, want error", ok, err)
	}
	// Mismatched entries quarantine like corrupt ones.
	if _, ok, err := store.Get(wrong); err != nil || ok {
		t.Errorf("Get after quarantine = ok=%v err=%v, want clean miss", ok, err)
	}
	if _, ok, err := store.Get(good.Key); err != nil || !ok {
		t.Errorf("original entry lost: ok=%v err=%v", ok, err)
	}
}

// TestDiskStoreEntryMode pins the cross-process permission fix: a
// warmed entry must be world-readable (0644), not the 0600 that
// os.CreateTemp opens with, so a cache warmed by acdbench under one
// user is servable by a daemon running as another.
func TestDiskStoreEntryMode(t *testing.T) {
	store, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor("table12", "params", "v1")
	if err := store.Put(Entry{Key: key}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(store.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o644 {
		t.Errorf("entry mode = %o, want 0644", got)
	}
}

// TestDiskStoreCrashSafePut simulates a crash between the durable
// temp-file write and the rename: Put fails, the orphaned temp file
// stays (as it would after a real crash), reopening the store sweeps
// it, and Get misses cleanly.
func TestDiskStoreCrashSafePut(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.EnableN(SiteDiskRename, 1, faultinject.Fault{})
	store.SetFaults(inj)

	key := KeyFor("table12", "params", "v1")
	if err := store.Put(Entry{Key: key}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Put with injected rename failure = %v, want ErrInjected", err)
	}
	orphans, _ := filepath.Glob(filepath.Join(dir, "*", "entry-*.tmp"))
	if len(orphans) != 1 {
		t.Fatalf("crashed Put left %d temp files, want 1", len(orphans))
	}

	sweptBefore := obs.GetCounter("resultcache.disk_tmp_swept").Value()
	reopened, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if orphans, _ := filepath.Glob(filepath.Join(dir, "*", "entry-*.tmp")); len(orphans) != 0 {
		t.Errorf("janitor left orphans behind: %v", orphans)
	}
	if got := obs.GetCounter("resultcache.disk_tmp_swept").Value() - sweptBefore; got != 1 {
		t.Errorf("resultcache.disk_tmp_swept delta = %d, want 1", got)
	}
	if _, ok, err := reopened.Get(key); err != nil || ok {
		t.Errorf("Get after janitor = ok=%v err=%v, want clean miss", ok, err)
	}

	// The same store works normally once the injected fault is spent.
	if err := store.Put(Entry{Key: key}); err != nil {
		t.Fatalf("Put after fault: %v", err)
	}
	if _, ok, err := reopened.Get(key); err != nil || !ok {
		t.Errorf("Get after recovery = ok=%v err=%v, want hit", ok, err)
	}
}

// TestDiskStorePutWriteFaultCleansUp: a failed write (unlike a failed
// rename) is an ordinary error path, not a crash — Put cleans its temp
// file up itself.
func TestDiskStorePutWriteFaultCleansUp(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.EnableN(SiteDiskPut, 1, faultinject.Fault{})
	store.SetFaults(inj)
	if err := store.Put(Entry{Key: KeyFor("a", "p", "v")}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Put = %v, want ErrInjected", err)
	}
	if orphans, _ := filepath.Glob(filepath.Join(dir, "*", "entry-*.tmp")); len(orphans) != 0 {
		t.Errorf("failed write left temp files: %v", orphans)
	}
}

func TestDiskStoreGetFault(t *testing.T) {
	store, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor("a", "p", "v")
	if err := store.Put(Entry{Key: key}); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.EnableN(SiteDiskGet, 1, faultinject.Fault{})
	store.SetFaults(inj)
	if _, ok, err := store.Get(key); !errors.Is(err, faultinject.ErrInjected) || ok {
		t.Fatalf("Get with injected fault = ok=%v err=%v, want ErrInjected", ok, err)
	}
	// The entry itself is intact once the fault is spent.
	if _, ok, err := store.Get(key); err != nil || !ok {
		t.Errorf("Get after fault = ok=%v err=%v, want hit", ok, err)
	}
}

// TestDiskStoreVerify: a store holding good entries, a corrupt entry,
// a mis-filed entry, and an orphaned temp file verifies to exactly the
// good set, quarantining the rest.
func TestDiskStoreVerify(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := store.Put(Entry{Key: KeyFor("table12", strings.Repeat("p", i+1), "v")}); err != nil {
			t.Fatal(err)
		}
	}

	// One corrupt entry, one entry filed under the wrong name, one
	// orphaned temp file.
	corrupt := KeyFor("corrupt", "p", "v").String()
	corruptDir := filepath.Join(dir, corrupt[:2])
	if err := os.MkdirAll(corruptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corruptDir, corrupt+".json"), []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := Entry{Key: KeyFor("good", "p", "v")}
	if err := store.Put(good); err != nil {
		t.Fatal(err)
	}
	misfiled := KeyFor("misfiled", "p", "v").String()
	misfiledDir := filepath.Join(dir, misfiled[:2])
	if err := os.MkdirAll(misfiledDir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(store.path(good.Key))
	if err := os.WriteFile(filepath.Join(misfiledDir, misfiled+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corruptDir, "entry-123.tmp"), []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}

	rep, err := store.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 4 || rep.Bad != 2 || rep.TmpSwept != 1 {
		t.Errorf("Verify = %+v, want 4 entries, 2 bad, 1 temp swept", rep)
	}
	if len(rep.BadPaths) != 2 {
		t.Errorf("BadPaths = %v, want the corrupt and misfiled entries", rep.BadPaths)
	}

	// A second walk is clean: the bad files are quarantined.
	rep, err = store.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 4 || rep.Bad != 0 || rep.TmpSwept != 0 {
		t.Errorf("second Verify = %+v, want 4 entries and nothing to do", rep)
	}
}
