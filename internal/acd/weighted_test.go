package acd

import (
	"math"
	"strings"
	"testing"
)

func TestWeightedAccumulator(t *testing.T) {
	var a WeightedAccumulator
	if a.ACD() != 0 {
		t.Error("empty weighted ACD != 0")
	}
	a.Add(2, 100) // 100 bytes over 2 hops
	a.Add(10, 1)  // 1 byte over 10 hops
	want := (2.0*100 + 10.0*1) / 101
	if math.Abs(a.ACD()-want) > 1e-12 {
		t.Errorf("weighted ACD = %f, want %f", a.ACD(), want)
	}
	if a.Events != 2 || a.Weight != 101 {
		t.Errorf("events=%d weight=%f", a.Events, a.Weight)
	}
	var b WeightedAccumulator
	b.Add(1, 9)
	a.Merge(b)
	if a.Events != 3 || a.Weight != 110 {
		t.Errorf("after merge: %+v", a)
	}
	if !strings.Contains(a.String(), "weighted acd") {
		t.Error("String missing label")
	}
}

func TestFromUniformMatchesPlainACD(t *testing.T) {
	var acc Accumulator
	acc.Add(3)
	acc.Add(5)
	w := FromUniform(acc, 64)
	if math.Abs(w.ACD()-acc.ACD()) > 1e-12 {
		t.Errorf("uniform weighting changed ACD: %f vs %f", w.ACD(), acc.ACD())
	}
	if w.Events != 2 || w.Weight != 128 {
		t.Errorf("converted %+v", w)
	}
}

func TestCombineShiftsTowardHeavyPhase(t *testing.T) {
	// NFI: many short messages; FFI: few long ones. The combined
	// volume-weighted ACD must sit between the two and move toward the
	// FFI value as expansion size grows.
	var nfi, ffi Accumulator
	nfi.AddN(1, 1000) // 1000 events at distance 1
	ffi.AddN(10, 10)  // 10 events at distance 10
	small := Combine(FromUniform(nfi, 16), FromUniform(ffi, 16))
	big := Combine(FromUniform(nfi, 16), FromUniform(ffi, 4096))
	if !(small.ACD() < big.ACD()) {
		t.Fatalf("volume weighting had no effect: %f vs %f", small.ACD(), big.ACD())
	}
	if big.ACD() <= nfi.ACD() || big.ACD() >= ffi.ACD() {
		t.Fatalf("combined ACD %f outside [%f, %f]", big.ACD(), nfi.ACD(), ffi.ACD())
	}
}
