package sfc

import (
	"testing"

	"sfcacd/internal/geom"
)

// TestMortonKeyMatchesCurve pins the raw key helpers to the Morton
// curve they shortcut: same interleaving, same inverse.
func TestMortonKeyMatchesCurve(t *testing.T) {
	const order = 5
	Walk(Morton, order, func(d uint64, p geom.Point) {
		if k := MortonKey(p.X, p.Y); k != d {
			t.Fatalf("MortonKey(%d,%d) = %d, curve index %d", p.X, p.Y, k, d)
		}
		if k := MortonXPart(p.X) | MortonYPart(p.Y); k != d {
			t.Fatalf("part composition for %v = %d, want %d", p, k, d)
		}
		x, y := MortonCoords(d)
		if x != p.X || y != p.Y {
			t.Fatalf("MortonCoords(%d) = (%d,%d), want %v", d, x, y, p)
		}
	})
}

// TestMortonIncX checks the dilated-increment identity over a span
// wide enough to exercise multi-bit carries.
func TestMortonIncX(t *testing.T) {
	for y := uint32(0); y < 4; y++ {
		xp := MortonXPart(0)
		for x := uint32(0); x < 1<<12; x++ {
			if got, want := MortonYPart(y)|xp, MortonKey(x, y); got != want {
				t.Fatalf("dilated walk at (%d,%d): key %d, want %d", x, y, got, want)
			}
			xp = MortonIncX(xp)
		}
	}
}

// TestMorton3Key checks the 3D interleaving against a per-bit
// reference and its injectivity on a small cube.
func TestMorton3Key(t *testing.T) {
	ref := func(x, y, z uint32) uint64 {
		var k uint64
		for b := uint(0); b < 21; b++ {
			k |= uint64(x>>b&1) << (3 * b)
			k |= uint64(y>>b&1) << (3*b + 1)
			k |= uint64(z>>b&1) << (3*b + 2)
		}
		return k
	}
	seen := make(map[uint64]bool)
	for z := uint32(0); z < 8; z++ {
		for y := uint32(0); y < 8; y++ {
			for x := uint32(0); x < 8; x++ {
				k := Morton3Key(x, y, z)
				if want := ref(x, y, z); k != want {
					t.Fatalf("Morton3Key(%d,%d,%d) = %d, want %d", x, y, z, k, want)
				}
				if seen[k] {
					t.Fatalf("Morton3Key collision at (%d,%d,%d)", x, y, z)
				}
				seen[k] = true
			}
		}
	}
	// High coordinates still interleave per-bit correctly.
	if k, want := Morton3Key(1<<20, 1<<20, 1<<20), ref(1<<20, 1<<20, 1<<20); k != want {
		t.Fatalf("Morton3Key high bits = %d, want %d", k, want)
	}
}
