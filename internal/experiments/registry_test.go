package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// registryTestParams is a tiny configuration every registry entry can run in
// well under a second; registry round-trip tests use it so running the
// whole table stays cheap.
var registryTestParams = Params{Particles: 300, Order: 5, ProcOrder: 2, Radius: 1, Trials: 1, Seed: 7}

func TestRegistryNamesUniqueAndOrdered(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for i, name := range names {
		if name == "" || name == "all" {
			t.Errorf("invalid registry name %q", name)
		}
		if strings.ToLower(name) != name || strings.ContainsAny(name, " /") {
			t.Errorf("registry name %q is not a lowercase token", name)
		}
		if seen[name] {
			t.Errorf("duplicate registry name %q", name)
		}
		seen[name] = true
		if Registry()[i].Name != name {
			t.Errorf("Names()[%d] = %q out of sync with Registry()", i, name)
		}
	}
	if !seen["table12"] || !seen["fig6"] || !seen["fig7"] {
		t.Errorf("core paper experiments missing from registry: %v", names)
	}
}

func TestRegistrySpecsComplete(t *testing.T) {
	for _, spec := range Registry() {
		if spec.Desc == "" {
			t.Errorf("%s: empty description", spec.Name)
		}
		if spec.Run == nil || spec.Decode == nil {
			t.Errorf("%s: nil Run or Decode", spec.Name)
		}
		if err := spec.Paper.Validate(); err != nil {
			t.Errorf("%s: invalid paper preset: %v", spec.Name, err)
		}
	}
}

func TestLookup(t *testing.T) {
	spec, ok := Lookup("table12")
	if !ok || spec.Name != "table12" {
		t.Fatalf("Lookup(table12) = %+v, %v", spec, ok)
	}
	if _, ok := Lookup("nonesuch"); ok {
		t.Fatal("Lookup(nonesuch) succeeded")
	}
}

// TestRegistryRoundTrip runs every experiment at a tiny configuration
// and checks the contract the serving layer depends on: Run produces a
// renderable result whose JSON round-trips through Decode into an
// equal rendering.
func TestRegistryRoundTrip(t *testing.T) {
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			out, err := spec.Run(context.Background(), registryTestParams)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if out.Result == nil {
				t.Fatal("nil result")
			}
			var direct bytes.Buffer
			if err := out.Result.Render(&direct); err != nil {
				t.Fatalf("Render: %v", err)
			}
			if direct.Len() == 0 {
				t.Fatal("empty rendering")
			}
			data, err := json.Marshal(out.Result)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			decoded, err := spec.Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			var replay bytes.Buffer
			if err := decoded.Render(&replay); err != nil {
				t.Fatalf("Render decoded: %v", err)
			}
			if direct.String() != replay.String() {
				t.Errorf("decoded rendering differs from direct rendering:\n--- direct ---\n%s\n--- decoded ---\n%s",
					direct.String(), replay.String())
			}
			for _, panel := range out.Result.CSVPanels() {
				if panel.Name == "" || panel.Write == nil {
					t.Errorf("invalid CSV panel %+v", panel)
				}
			}
		})
	}
}

// TestRegistryRunHonorsCancellation: every entry must return promptly
// with the context's error when called with a canceled context — the
// serving layer relies on this to shed abandoned work.
func TestRegistryRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			out, err := spec.Run(ctx, registryTestParams)
			if err == nil {
				t.Fatalf("Run with canceled context succeeded (result %T)", out.Result)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run error = %v, want context.Canceled", err)
			}
		})
	}
}

// TestDerivedConfigs pins the derivations that map shared Params onto
// experiment-specific configurations. They must stay pure functions of
// Params: the cache key is computed from Params alone, so any hidden
// input here would poison the content-addressed cache.
func TestDerivedConfigs(t *testing.T) {
	scaled := Table12Paper.Scale(2)
	if got := ClusteringFromParams(scaled).QueryTrials; got != 2000 {
		t.Errorf("scaled clustering trials = %d, want 2000", got)
	}
	if got := ClusteringFromParams(Table12Paper).QueryTrials; got != 10000 {
		t.Errorf("paper clustering trials = %d, want 10000", got)
	}
	if got := MetricsFromParams(scaled).MetricOrder; got != 7 {
		t.Errorf("scaled metric order = %d, want 7", got)
	}
	if got := MetricsFromParams(Table12Paper).MetricOrder; got != 9 {
		t.Errorf("paper metric order = %d, want 9", got)
	}
	if got := ThreeDFromParams(scaled); got != ThreeDDefault {
		t.Errorf("scaled 3D config = %+v, want ThreeDDefault", got)
	}
	if got := ThreeDFromParams(Table12Paper); got.Particles != 200000 || got.Order != 7 || got.ProcOrder != 3 {
		t.Errorf("paper 3D config = %+v, want 200000 particles at order 7, proc order 3", got)
	}
	if got := fig7Orders(Params{ProcOrder: 8}); len(got) != 4 || got[0] != 5 || got[3] != 8 {
		t.Errorf("fig7Orders(po=8) = %v, want [5 6 7 8]", got)
	}
	if got := fig7Orders(Params{ProcOrder: 2}); len(got) != 1 || got[0] != 2 {
		t.Errorf("fig7Orders(po=2) = %v, want [2]", got)
	}
}
