package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"sfcacd/internal/anns"
	"sfcacd/internal/sfc"
)

// testParams is the scaled-down configuration the test suite uses:
// 4,000 particles on 256x256, 256 processors.
var testParams = Params{
	Particles: 4000,
	Order:     8,
	ProcOrder: 4,
	Radius:    1,
	Trials:    1,
	Seed:      7,
}

func TestParamsValidate(t *testing.T) {
	if err := testParams.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testParams
	bad.Particles = 0
	if bad.Validate() == nil {
		t.Error("0 particles accepted")
	}
	bad = testParams
	bad.Particles = 1 << 30
	if bad.Validate() == nil {
		t.Error("overfull grid accepted")
	}
	bad = testParams
	bad.Trials = 0
	if bad.Validate() == nil {
		t.Error("0 trials accepted")
	}
	bad = testParams
	bad.Radius = -1
	if bad.Validate() == nil {
		t.Error("negative radius accepted")
	}
	bad = testParams
	bad.Order = 30
	if bad.Validate() == nil {
		t.Error("huge order accepted")
	}
}

func TestParamsScale(t *testing.T) {
	p := Table12Paper.Scale(2)
	if p.Particles != 250000/16 || p.Order != 8 || p.ProcOrder != 6 {
		t.Fatalf("scaled params %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scaling never drives parameters below their floors.
	tiny := Params{Particles: 8, Order: 2, ProcOrder: 1, Trials: 1}.Scale(10)
	if tiny.Particles < 1 || tiny.Order < 2 || tiny.ProcOrder < 1 {
		t.Fatalf("over-scaled params %+v", tiny)
	}
}

func TestParamsP(t *testing.T) {
	if testParams.P() != 256 {
		t.Fatalf("P = %d", testParams.P())
	}
}

func TestRunTable12ShapeAndDeterminism(t *testing.T) {
	res, err := RunTable12(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d distributions, want 3", len(res))
	}
	for _, r := range res {
		if len(r.NFI) != 4 || len(r.FFI) != 4 || len(r.Curves) != 4 {
			t.Fatalf("%s: bad shape", r.Distribution)
		}
		for i := range r.NFI {
			for j := range r.NFI[i] {
				if r.NFI[i][j] <= 0 || r.FFI[i][j] <= 0 {
					t.Fatalf("%s: nonpositive ACD at (%d,%d)", r.Distribution, i, j)
				}
			}
		}
	}
	// Determinism.
	res2, err := RunTable12(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	for d := range res {
		for i := range res[d].NFI {
			for j := range res[d].NFI[i] {
				if res[d].NFI[i][j] != res2[d].NFI[i][j] || res[d].FFI[i][j] != res2[d].FFI[i][j] {
					t.Fatal("RunTable12 not deterministic")
				}
			}
		}
	}
}

func TestTable12PaperOrdering(t *testing.T) {
	// The paper's headline conclusions, checked on the uniform
	// distribution at test scale:
	//  - NFI: Hilbert processor order dominates row-major processor
	//    order for every particle order (Table I row comparison).
	//  - The diagonal (same curve both roles) satisfies
	//    hilbert < rowmajor by a wide margin.
	res, err := RunTable12(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	uniform := res[0]
	if uniform.Distribution != "uniform" {
		t.Fatalf("first distribution %q", uniform.Distribution)
	}
	const hilbert, zcurve, gray, rowmajor = 0, 1, 2, 3
	for pc := 0; pc < 4; pc++ {
		if uniform.NFI[hilbert][pc] >= uniform.NFI[rowmajor][pc] {
			t.Errorf("NFI: hilbert proc order (%f) >= rowmajor proc order (%f) for particle curve %d",
				uniform.NFI[hilbert][pc], uniform.NFI[rowmajor][pc], pc)
		}
	}
	if uniform.NFI[hilbert][hilbert]*2 >= uniform.NFI[rowmajor][rowmajor] {
		t.Errorf("NFI diagonal: hilbert %f not well below rowmajor %f",
			uniform.NFI[hilbert][hilbert], uniform.NFI[rowmajor][rowmajor])
	}
	if uniform.FFI[hilbert][hilbert] >= uniform.FFI[rowmajor][rowmajor] {
		t.Errorf("FFI diagonal: hilbert %f >= rowmajor %f",
			uniform.FFI[hilbert][hilbert], uniform.FFI[rowmajor][rowmajor])
	}
	// Gray never beats both Hilbert and Z on the diagonal (the paper's
	// {Hilbert ~ Z} < Gray ordering).
	if uniform.NFI[gray][gray] < uniform.NFI[hilbert][hilbert] &&
		uniform.NFI[gray][gray] < uniform.NFI[zcurve][zcurve] {
		t.Errorf("NFI: gray diagonal unexpectedly best")
	}
}

func TestTable12NormalWorseThanUniformForRecursiveNFI(t *testing.T) {
	// §VI-A: recursive curves do much better on uniform than on the
	// centrally clustered normal input (paper reports ~2x).
	res, err := RunTable12(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	uniform, normal := res[0], res[1]
	if normal.Distribution != "normal" {
		t.Fatalf("second distribution %q", normal.Distribution)
	}
	for _, idx := range []int{0, 1, 2} { // hilbert, z, gray diagonals
		if normal.NFI[idx][idx] <= uniform.NFI[idx][idx] {
			t.Errorf("curve %d: normal NFI %f <= uniform %f",
				idx, normal.NFI[idx][idx], uniform.NFI[idx][idx])
		}
	}
}

func TestTable12Matrices(t *testing.T) {
	res, err := RunTable12(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	nfi, ffi := res[0].Matrices()
	var b strings.Builder
	if err := nfi.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := ffi.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table I") || !strings.Contains(b.String(), "Table II") {
		t.Error("matrix titles missing")
	}
}

func TestRunFig5MatchesANNSPackage(t *testing.T) {
	res, err := RunFig5(context.Background(), 1, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Orders) != 5 || len(res.Curves) != 4 {
		t.Fatalf("bad shape %+v", res)
	}
	for c, curve := range sfc.All() {
		for i, o := range res.Orders {
			want := anns.Stretch(curve, o, anns.Options{Radius: 1}).Mean
			if math.Abs(res.ANNS[c][i]-want) > 1e-12 {
				t.Fatalf("%s order %d: %f != %f", curve.Name(), o, res.ANNS[c][i], want)
			}
		}
	}
	// Stretch grows with resolution for every curve.
	for c := range res.Curves {
		for i := 1; i < len(res.Orders); i++ {
			if res.ANNS[c][i] <= res.ANNS[c][i-1] {
				t.Errorf("%s: stretch not increasing at order %d", res.Curves[c], res.Orders[i])
			}
		}
	}
	if _, err := RunFig5(context.Background(), 3, 2, 1, 0); err == nil {
		t.Error("bad order range accepted")
	}
	if _, err := RunFig5(context.Background(), 1, 3, 0, 0); err == nil {
		t.Error("bad radius accepted")
	}
}

func TestRunFig5SeriesTable(t *testing.T) {
	res, err := RunFig5(context.Background(), 1, 4, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.SeriesTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "radius 6") {
		t.Error("series table missing radius")
	}
}

func TestRunFig6PaperTrends(t *testing.T) {
	p := testParams
	p.Radius = 2
	res, err := RunFig6(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NFI) != 6 || len(res.NFI[0]) != 4 {
		t.Fatalf("bad shape")
	}
	idx := map[string]int{}
	for i, name := range res.Topologies {
		idx[name] = i
	}
	const hilbert = 0
	// Bus and ring are far worse than every other topology for both
	// interaction families (the paper omitted them from the plot for
	// this reason). The paper's hypercube-beats-mesh and
	// quadtree-beats-all-FFI findings are scale-dependent crossovers —
	// they need the paper's 65,536-processor networks, where the grid
	// diameter (510 hops) makes long-range tails dominate — so they are
	// verified by the paper-scale run recorded in EXPERIMENTS.md, not
	// at unit-test scale.
	for _, slow := range []string{"bus", "ring"} {
		for _, fast := range []string{"mesh", "torus", "quadtree", "hypercube"} {
			if res.NFI[idx[slow]][hilbert] <= res.NFI[idx[fast]][hilbert] {
				t.Errorf("NFI: %s (%f) <= %s (%f)", slow, res.NFI[idx[slow]][hilbert],
					fast, res.NFI[idx[fast]][hilbert])
			}
			if res.FFI[idx[slow]][hilbert] <= res.FFI[idx[fast]][hilbert] {
				t.Errorf("FFI: %s (%f) <= %s (%f)", slow, res.FFI[idx[slow]][hilbert],
					fast, res.FFI[idx[fast]][hilbert])
			}
		}
	}
	// Hilbert is the best curve on the torus for both families.
	for c := 1; c < 4; c++ {
		if res.NFI[idx["torus"]][hilbert] > res.NFI[idx["torus"]][c] {
			t.Errorf("NFI torus: hilbert (%f) worse than curve %d (%f)",
				res.NFI[idx["torus"]][hilbert], c, res.NFI[idx["torus"]][c])
		}
	}
	var b strings.Builder
	nfi, ffi := res.Matrices()
	if err := nfi.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := ffi.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig7Trends(t *testing.T) {
	p := testParams
	res, err := RunFig7(context.Background(), p, []uint{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ProcCounts) != 3 || res.ProcCounts[0] != 16 || res.ProcCounts[2] != 256 {
		t.Fatalf("proc counts %v", res.ProcCounts)
	}
	const hilbert, rowmajor = 0, 3
	for i := range res.ProcCounts {
		if res.NFI[hilbert][i] >= res.NFI[rowmajor][i] {
			t.Errorf("NFI p=%d: hilbert %f >= rowmajor %f",
				res.ProcCounts[i], res.NFI[hilbert][i], res.NFI[rowmajor][i])
		}
		if res.FFI[hilbert][i] >= res.FFI[rowmajor][i] {
			t.Errorf("FFI p=%d: hilbert %f >= rowmajor %f",
				res.ProcCounts[i], res.FFI[hilbert][i], res.FFI[rowmajor][i])
		}
	}
	// More processors -> more remote communication -> higher ACD.
	for c := range res.Curves {
		for i := 1; i < len(res.ProcCounts); i++ {
			if res.NFI[c][i] <= res.NFI[c][i-1] {
				t.Errorf("%s: NFI not increasing in p at %d", res.Curves[c], res.ProcCounts[i])
			}
		}
	}
	if _, err := RunFig7(context.Background(), p, nil); err == nil {
		t.Error("empty sweep accepted")
	}
	var b strings.Builder
	nfi, ffi := res.SeriesTables()
	if err := nfi.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := ffi.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestRunRadiusSweepOrderingInvariant(t *testing.T) {
	res, err := RunRadiusSweep(context.Background(), testParams, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// §VI-C: radius changes never reorder the curves. Gray and Z are
	// "approximately equivalent" in the paper and may swap within
	// noise, so the invariant is checked on the significant ordering:
	// Hilbert stays best and row-major stays worst at every radius.
	const hilbert, rowmajor = 0, 3
	for i := range res.Radii {
		for c := 1; c < 4; c++ {
			if res.NFI[hilbert][i] > res.NFI[c][i] {
				t.Errorf("radius %d: hilbert (%f) not best (curve %d at %f)",
					res.Radii[i], res.NFI[hilbert][i], c, res.NFI[c][i])
			}
		}
		for c := 0; c < 3; c++ {
			if res.NFI[rowmajor][i] < res.NFI[c][i] {
				t.Errorf("radius %d: rowmajor (%f) not worst (curve %d at %f)",
					res.Radii[i], res.NFI[rowmajor][i], c, res.NFI[c][i])
			}
		}
	}
	// ACD grows with radius for each curve.
	for c := range res.Curves {
		for i := 1; i < len(res.Radii); i++ {
			if res.NFI[c][i] <= res.NFI[c][i-1] {
				t.Errorf("%s: ACD not growing with radius", res.Curves[c])
			}
		}
	}
	if _, err := RunRadiusSweep(context.Background(), testParams, nil); err == nil {
		t.Error("empty radius sweep accepted")
	}
	var b strings.Builder
	if err := res.SeriesTable().Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestRunSizeSweep(t *testing.T) {
	res, err := RunSizeSweep(context.Background(), testParams, []int{1000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) != 2 {
		t.Fatalf("sizes %v", res.Sizes)
	}
	const hilbert, rowmajor = 0, 3
	for i := range res.Sizes {
		if res.NFI[hilbert][i] >= res.NFI[rowmajor][i] {
			t.Errorf("n=%d: hilbert %f >= rowmajor %f", res.Sizes[i],
				res.NFI[hilbert][i], res.NFI[rowmajor][i])
		}
	}
	if _, err := RunSizeSweep(context.Background(), testParams, nil); err == nil {
		t.Error("empty size sweep accepted")
	}
	var b strings.Builder
	nfi, ffi := res.SeriesTables()
	if err := nfi.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := ffi.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestRunMeshTorusWrapLinkUtility(t *testing.T) {
	res, err := RunMeshTorus(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	const hilbert, rowmajor = 0, 3
	// Torus never loses to the mesh (it has strictly more links).
	for c := range res.Curves {
		if res.TorusNFI[c] > res.MeshNFI[c]+1e-9 {
			t.Errorf("%s: torus NFI %f > mesh %f", res.Curves[c], res.TorusNFI[c], res.MeshNFI[c])
		}
	}
	// §VI-B: row-major benefits from wrap links much more than the
	// recursive curves do (relative mesh/torus gap).
	hilbertGap := res.MeshFFI[hilbert] / res.TorusFFI[hilbert]
	rowmajorGap := res.MeshFFI[rowmajor] / res.TorusFFI[rowmajor]
	if rowmajorGap <= hilbertGap {
		t.Errorf("FFI wrap-link gap: rowmajor %f <= hilbert %f", rowmajorGap, hilbertGap)
	}
	var b strings.Builder
	if err := res.Matrix().Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestRunPrimitives(t *testing.T) {
	res := RunPrimitives(3, 0)
	if len(res.Patterns) != 5 || len(res.Curves) != 4 {
		t.Fatalf("bad shape")
	}
	// Ring exchange: hilbert placement is optimal (all unit hops).
	ringRow := -1
	for i, p := range res.Patterns {
		if p == "ring" {
			ringRow = i
		}
	}
	if ringRow == -1 {
		t.Fatal("no ring pattern")
	}
	const hilbert, rowmajor = 0, 3
	if res.Mesh[ringRow][hilbert] >= res.Mesh[ringRow][rowmajor] {
		t.Errorf("ring on mesh: hilbert %f >= rowmajor %f",
			res.Mesh[ringRow][hilbert], res.Mesh[ringRow][rowmajor])
	}
	// Deterministic.
	res2 := RunPrimitives(3, 0)
	for i := range res.Mesh {
		for j := range res.Mesh[i] {
			if res.Mesh[i][j] != res2.Mesh[i][j] || res.Torus[i][j] != res2.Torus[i][j] {
				t.Fatal("RunPrimitives not deterministic")
			}
		}
	}
	var b strings.Builder
	mesh, torus := res.Matrices()
	if err := mesh.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := torus.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestRunContention(t *testing.T) {
	res, err := RunContention(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	const hilbert, rowmajor = 0, 3
	if res.MeshACD[hilbert] >= res.MeshACD[rowmajor] {
		t.Errorf("contention mesh ACD: hilbert %f >= rowmajor %f",
			res.MeshACD[hilbert], res.MeshACD[rowmajor])
	}
	if res.MeshMaxLoad[hilbert] >= res.MeshMaxLoad[rowmajor] {
		t.Errorf("contention mesh max load: hilbert %f >= rowmajor %f",
			res.MeshMaxLoad[hilbert], res.MeshMaxLoad[rowmajor])
	}
	for c := range res.Curves {
		if res.MeshMaxLoad[c] < res.MeshMeanLoad[c] {
			t.Errorf("%s: max load below mean load", res.Curves[c])
		}
	}
	var b strings.Builder
	if err := res.Matrix().Render(&b); err != nil {
		t.Fatal(err)
	}
}
