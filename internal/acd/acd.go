// Package acd implements the paper's primary contribution: the Average
// Communicated Distance metric (Definition 1) and the particle-to-
// processor assignment pipeline it is evaluated over.
//
// Given a problem instance, the ACD is the average shortest-path hop
// distance over every pairwise communication the application performs.
// The package provides the accumulator that tallies communication
// events and the Assignment that realizes §IV steps 1–4: order the
// particles with a particle-order SFC, partition them into p
// consecutive chunks, and distribute chunk i to processor i (whose
// physical location is fixed by the topology's processor-order SFC).
package acd

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sfcacd/internal/geom"
	"sfcacd/internal/keynav"
	"sfcacd/internal/obs"
	"sfcacd/internal/partition"
	"sfcacd/internal/sfc"
)

// Observability metrics. Accumulators are built in per-worker locals
// and merged, so the hot Add path stays plain field arithmetic; the
// model entry points (internal/fmmmodel, internal/model3d) publish
// final merged accumulators via Record once per evaluation.
var (
	eventsCounter  = obs.GetCounter("acd.events")
	zeroHopCounter = obs.GetCounter("acd.zero_hops")
	assignCounter  = obs.GetCounter("acd.assignments")
	// assignTime buckets span 10µs..10s+ in 4x steps.
	assignTime = obs.GetHistogram("acd.assign_ns", obs.ExponentialBuckets(1e4, 4, 11))
)

// Accumulator tallies communication events and their hop distances.
// The zero value is ready to use.
type Accumulator struct {
	// Sum is the total hop distance over all recorded events.
	Sum uint64
	// Count is the number of recorded communication events, including
	// zero-hop (same processor) events per §IV step 6.
	Count uint64
	// Zeros is the number of zero-hop events: communications that stay
	// on the owning processor. Zeros/Count is the zero-hop fraction —
	// the share of traffic the assignment kept local.
	Zeros uint64
}

// Add records one communication of the given hop distance.
func (a *Accumulator) Add(hops int) {
	a.Sum += uint64(hops)
	a.Count++
	if hops == 0 {
		a.Zeros++
	}
}

// AddN records n communications of the same hop distance.
func (a *Accumulator) AddN(hops, n int) {
	a.Sum += uint64(hops) * uint64(n)
	a.Count += uint64(n)
	if hops == 0 {
		a.Zeros += uint64(n)
	}
}

// Merge folds another accumulator into this one.
func (a *Accumulator) Merge(b Accumulator) {
	a.Sum += b.Sum
	a.Count += b.Count
	a.Zeros += b.Zeros
}

// ZeroHopFraction returns Zeros/Count, the share of communications
// that stayed on their processor. It is 0 for an empty accumulator.
func (a Accumulator) ZeroHopFraction() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.Zeros) / float64(a.Count)
}

// Record publishes the accumulator's tallies to the obs registry
// ("acd.events", "acd.zero_hops"). Call it exactly once per final
// merged accumulator — model entry points do this; callers composing
// accumulators further (e.g. FFIResult.Total) must not re-record.
func (a Accumulator) Record() {
	eventsCounter.Add(a.Count)
	zeroHopCounter.Add(a.Zeros)
}

// ACD returns the Average Communicated Distance: Sum/Count. It is 0
// for an empty accumulator.
func (a Accumulator) ACD() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.Sum) / float64(a.Count)
}

// String formats the accumulator as "acd=… (events=…)".
func (a Accumulator) String() string {
	return fmt.Sprintf("acd=%.3f (events=%d)", a.ACD(), a.Count)
}

// Assignment is the result of distributing particles onto processors:
// steps 1–4 of the paper's §IV algorithm.
type Assignment struct {
	// Order is the spatial resolution order k (grid side 2^k).
	Order uint
	// P is the number of processors.
	P int
	// Particles holds the particle cells in particle-order SFC order
	// (i.e. already sorted along the curve).
	Particles []geom.Point
	// Ranks[i] is the processor rank owning Particles[i]. Ranks are
	// monotonically non-decreasing.
	Ranks []int32
	// side caches the grid side.
	side uint32
	// The cell->rank table maps an occupied cell to the rank owning its
	// particle: dense array when the grid is small enough, sparse map
	// otherwise. It is built lazily on the first RankAt — the key-space
	// engine (keynav) resolves ranks on the sorted key array and never
	// pays for it. tableReady publishes the build; tableMu serializes
	// it.
	tableMu    sync.Mutex
	tableReady atomic.Bool
	denseRank  []int32
	sparseRank map[uint64]int32
	// keyIx caches the key-space occupancy index shared by the NFI and
	// FFI passes of the keys engine; built on first KeyIndex call.
	ixMu  sync.Mutex
	keyIx *keynav.Index
	// released marks the assignment dead: lazy structures are no longer
	// built and RankAt reports every cell empty.
	released atomic.Bool
}

// denseLimit is the largest cell count for which the cell->rank lookup
// uses a dense array (4096x4096 = 64 MiB of int32). The cutover is a
// memory bound, not a speed one: BenchmarkRankAt has the dense load at
// ~3.7 ns/op against ~21 ns/op for the sparse map on random probes, so
// the array wins wherever it fits. (keynav's key search is ~34 ns/op
// on the same random probes — its advantage is elsewhere: sequential
// sweeps hit the rankNear fast path and the table build is skipped
// entirely.) It is a var so tests can force the sparse path at small
// orders.
var denseLimit = uint64(1) << 24

// DenseRankTableFits reports whether an order-k grid's cell->rank
// lookup fits the dense-array budget (denseLimit cells). It is the
// occupancy heuristic behind keynav.EngineAuto: where the dense table
// fits, the tree engine's probes are cheapest; past the budget the
// tree path degrades to sparse map probes and the key-space engine
// wins.
func DenseRankTableFits(order uint) bool { return geom.Cells(order) <= denseLimit }

// denseRankPool recycles dense rank tables between assignments.
// Parallel sweep cells each build a full 4^order table; without
// pooling, the allocator (and the -1 refill) dominates small-trial
// sweeps. Tables are returned by Assignment.Release.
var denseRankPool = sync.Pool{New: func() any { return new([]int32) }}

// newDenseRank returns a cells-long table filled with -1, reusing a
// pooled allocation when one fits.
func newDenseRank(cells uint64) []int32 {
	p := denseRankPool.Get().(*[]int32)
	t := *p
	*p = nil
	denseRankPool.Put(p)
	if uint64(cap(t)) < cells {
		t = make([]int32, cells)
	}
	t = t[:cells]
	// Doubling copy fills with -1 in O(n) copies of geometric size.
	t[0] = -1
	for i := 1; i < len(t); i *= 2 {
		copy(t[i:], t[:i])
	}
	return t
}

// Release returns the assignment's pooled scratch (the dense rank
// table and the key-space index) for reuse. The assignment must not be
// used afterwards: RankAt reports every cell empty. Only call it from
// owners that know the assignment is dead — the sweep scheduler's
// cells do; ordinary callers can rely on the garbage collector
// instead.
func (a *Assignment) Release() {
	if a == nil {
		return
	}
	a.released.Store(true)
	a.tableMu.Lock()
	if t := a.denseRank; t != nil {
		a.denseRank = nil
		p := denseRankPool.Get().(*[]int32)
		*p = t
		denseRankPool.Put(p)
	}
	a.sparseRank = nil
	a.tableReady.Store(true)
	a.tableMu.Unlock()
	a.ixMu.Lock()
	if a.keyIx != nil {
		a.keyIx.Release()
		a.keyIx = nil
	}
	a.ixMu.Unlock()
}

// ensureTable builds the cell->rank table from the particle arrays on
// first use.
func (a *Assignment) ensureTable() {
	a.tableMu.Lock()
	defer a.tableMu.Unlock()
	if a.tableReady.Load() {
		return
	}
	if a.released.Load() {
		a.tableReady.Store(true)
		return
	}
	if geom.Cells(a.Order) <= denseLimit {
		a.denseRank = newDenseRank(geom.Cells(a.Order))
		for i, pt := range a.Particles {
			a.denseRank[geom.CellID(pt, a.side)] = a.Ranks[i]
		}
	} else {
		a.sparseRank = make(map[uint64]int32, len(a.Particles))
		for i, pt := range a.Particles {
			a.sparseRank[geom.CellID(pt, a.side)] = a.Ranks[i]
		}
	}
	a.tableReady.Store(true)
}

// KeyIndex returns the assignment's key-space occupancy index
// (internal/keynav), building it on first call. The index is shared:
// the keys engine's near- and far-field passes over one assignment use
// the same build. Returns nil after Release.
func (a *Assignment) KeyIndex() *keynav.Index {
	a.ixMu.Lock()
	defer a.ixMu.Unlock()
	if a.keyIx == nil && !a.released.Load() {
		a.keyIx = keynav.Build(a.Order, a.Particles, a.Ranks)
	}
	return a.keyIx
}

// Assign orders the given particles along the particle-order curve,
// partitions them into p balanced consecutive chunks, and assigns
// chunk i to processor rank i. Duplicate cells are not allowed (the
// paper assumes at most one particle per finest-resolution cell).
func Assign(particles []geom.Point, curve sfc.Curve, order uint, p int) (*Assignment, error) {
	if p < 1 {
		return nil, fmt.Errorf("acd: p = %d must be positive", p)
	}
	if len(particles) == 0 {
		return nil, fmt.Errorf("acd: no particles")
	}
	assignCounter.Inc()
	defer obs.StartTimer(assignTime)()
	ordering := obs.StartSpan("ordering")
	perm, keys := sfc.SortPointsKeys(curve, order, particles)
	ordering.End()
	partitioning := obs.StartSpan("partitioning")
	defer partitioning.End()
	a := &Assignment{
		Order:     order,
		P:         p,
		Particles: make([]geom.Point, len(particles)),
		Ranks:     make([]int32, len(particles)),
		side:      geom.Side(order),
	}
	n := len(particles)
	// The cell->rank table is NOT built here: duplicate detection rides
	// on the sorted keys, and the keys engine never consults the table,
	// so it is deferred to the first RankAt (see ensureTable).
	prevIdx := uint64(0)
	for i, src := range perm {
		pt := particles[src]
		idx := keys[src] // curve.Index(order, pt), computed by the sort
		if i > 0 && idx == prevIdx {
			return nil, fmt.Errorf("acd: duplicate particle cell %v", pt)
		}
		prevIdx = idx
		a.Particles[i] = pt
		a.Ranks[i] = int32(partition.ChunkOf(i, n, p))
	}
	return a, nil
}

// FromOwners builds an Assignment from an explicit particle-to-rank
// ownership (particles need not be curve-sorted and ranks need not be
// monotone). This supports dynamic studies where particles move
// between timesteps while their owning processors stay fixed. The
// far-field model remains well defined: cell representatives are
// minimum ranks regardless of ordering.
func FromOwners(particles []geom.Point, ranks []int32, order uint, p int) (*Assignment, error) {
	if p < 1 {
		return nil, fmt.Errorf("acd: p = %d must be positive", p)
	}
	if len(particles) == 0 {
		return nil, fmt.Errorf("acd: no particles")
	}
	if len(particles) != len(ranks) {
		return nil, fmt.Errorf("acd: %d particles for %d ranks", len(particles), len(ranks))
	}
	assignCounter.Inc()
	defer obs.StartTimer(assignTime)()
	defer obs.StartSpan("partitioning").End()
	a := &Assignment{
		Order:     order,
		P:         p,
		Particles: append([]geom.Point(nil), particles...),
		Ranks:     append([]int32(nil), ranks...),
		side:      geom.Side(order),
	}
	// Unlike Assign, the table is built eagerly: duplicate detection
	// here has no sorted key stream to lean on, so it probes the table
	// as it fills.
	if geom.Cells(order) <= denseLimit {
		a.denseRank = newDenseRank(geom.Cells(order))
	} else {
		a.sparseRank = make(map[uint64]int32, len(particles))
	}
	a.tableReady.Store(true)
	for i, pt := range particles {
		if ranks[i] < 0 || int(ranks[i]) >= p {
			return nil, fmt.Errorf("acd: rank %d out of range [0,%d)", ranks[i], p)
		}
		id := geom.CellID(pt, a.side)
		if a.RankAt(pt) != -1 {
			return nil, fmt.Errorf("acd: duplicate particle cell %v", pt)
		}
		if a.denseRank != nil {
			a.denseRank[id] = ranks[i]
		} else {
			a.sparseRank[id] = ranks[i]
		}
	}
	return a, nil
}

// Side returns the grid side 2^Order.
func (a *Assignment) Side() uint32 { return a.side }

// N returns the particle count.
func (a *Assignment) N() int { return len(a.Particles) }

// RankAt returns the rank owning the particle in the given cell, or -1
// if the cell is empty. The first call builds the lookup table.
func (a *Assignment) RankAt(p geom.Point) int32 {
	if !a.tableReady.Load() {
		a.ensureTable()
	}
	id := geom.CellID(p, a.side)
	if a.denseRank != nil {
		return a.denseRank[id]
	}
	if r, ok := a.sparseRank[id]; ok {
		return r
	}
	return -1
}

// TableBuilt reports whether the cell->rank table has been
// materialized. Diagnostic: the keys engine is expected to leave it
// unbuilt.
func (a *Assignment) TableBuilt() bool { return a.tableReady.Load() }

// ChunkBounds returns the half-open range of ordered particle indices
// owned by rank r.
func (a *Assignment) ChunkBounds(r int) (lo, hi int) {
	return partition.Start(r, a.N(), a.P), partition.End(r, a.N(), a.P)
}
