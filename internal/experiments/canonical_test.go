package experiments

import (
	"reflect"
	"testing"
)

func withDist(p Params, d string) Params {
	p.Distribution = d
	return p
}

// TestCanonicalKeyPinned pins the exact canonical encoding. These
// strings feed the content-addressed result cache: changing them
// invalidates every stored entry, so any edit here must be deliberate
// and must bump ResultSchemaVersion reasoning in canonical.go.
func TestCanonicalKeyPinned(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		want string
	}{
		{"table12_scaled", Table12Paper.Scale(2), "params/v1:n=15625,k=8,po=6,r=1,t=3,s=2013"},
		{"table12_paper", Table12Paper, "params/v1:n=250000,k=10,po=8,r=1,t=3,s=2013"},
		{"fig6_paper", Fig6Paper, "params/v1:n=1000000,k=12,po=8,r=4,t=1,s=2013"},
		{"zero", Params{}, "params/v1:n=0,k=0,po=0,r=0,t=0,s=0"},
		{"uniform_explicit", withDist(Table12Paper, "uniform"), "params/v1:n=250000,k=10,po=8,r=1,t=3,s=2013"},
		{"normal", withDist(Table12Paper, "normal"), "params/v1:n=250000,k=10,po=8,r=1,t=3,s=2013,d=normal"},
		{"exp_alias", withDist(Table12Paper, "exp"), "params/v1:n=250000,k=10,po=8,r=1,t=3,s=2013,d=exponential"},
	}
	for _, tc := range cases {
		if got := tc.p.CanonicalKey(); got != tc.want {
			t.Errorf("%s: CanonicalKey() = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestCanonicalKeyIgnoresWorkers asserts the documented invariant that
// Workers does not participate in the key: results are worker-count
// invariant, so the same content address must serve any worker setting.
func TestCanonicalKeyIgnoresWorkers(t *testing.T) {
	a := Table12Paper
	b := Table12Paper
	b.Workers = 7
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("Workers changed the canonical key: %q vs %q", a.CanonicalKey(), b.CanonicalKey())
	}
}

// TestCanonicalKeyIgnoresEngine asserts the same invariant for the
// neighbor engine: every engine produces bit-identical results (pinned
// by TestDifferentialKeysEngine; auto only picks between them
// per-regime), so a keys- or auto-engine run must hit cache entries
// written by tree-engine runs and vice versa.
func TestCanonicalKeyIgnoresEngine(t *testing.T) {
	a := Table12Paper
	for _, engine := range []string{"keys", "auto"} {
		b := Table12Paper
		b.NFIEngine = engine
		if a.CanonicalKey() != b.CanonicalKey() {
			t.Errorf("NFIEngine=%q changed the canonical key: %q vs %q",
				engine, a.CanonicalKey(), b.CanonicalKey())
		}
	}
}

// TestCanonicalKeyIgnoresIncrMode asserts the same invariant for the
// incremental-maintenance mechanism: delta and rebuild maintenance are
// bit-identical (the cross-mechanism differential oracle), so runs
// differing only in IncrMode must share a cache entry.
func TestCanonicalKeyIgnoresIncrMode(t *testing.T) {
	a := Table12Paper
	b := Table12Paper
	b.IncrMode = "rebuild"
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("IncrMode changed the canonical key: %q vs %q", a.CanonicalKey(), b.CanonicalKey())
	}
}

// TestCanonicalKeyCoversParams fails when a field is added to Params
// without a decision about the canonical encoding. A new field must
// either join CanonicalKey (and the pinned strings above must change,
// invalidating old cache entries) or be excluded deliberately like
// Workers — then bump the expected count here with a comment.
func TestCanonicalKeyCoversParams(t *testing.T) {
	// 10 = Particles, Order, ProcOrder, Radius, Trials, Seed,
	// Distribution (non-uniform only) in the key, plus Workers,
	// NFIEngine, and IncrMode (excluded: results are invariant to
	// worker count, neighbor engine, and maintenance mechanism).
	const known = 10
	if got := reflect.TypeOf(Params{}).NumField(); got != known {
		t.Fatalf("Params has %d fields, CanonicalKey audited %d; "+
			"decide whether the new field is result-affecting and update CanonicalKey", got, known)
	}
}

// TestCanonicalKeySeparatesParams spot-checks that each key-bearing
// field actually changes the encoding.
func TestCanonicalKeySeparatesParams(t *testing.T) {
	base := Table12Paper.Scale(2)
	variants := []func(*Params){
		func(p *Params) { p.Particles++ },
		func(p *Params) { p.Order++ },
		func(p *Params) { p.ProcOrder++ },
		func(p *Params) { p.Radius++ },
		func(p *Params) { p.Trials++ },
		func(p *Params) { p.Seed++ },
		func(p *Params) { p.Distribution = "normal" },
		func(p *Params) { p.Distribution = "exponential" },
	}
	seen := map[string]bool{base.CanonicalKey(): true}
	for i, mutate := range variants {
		p := base
		mutate(&p)
		key := p.CanonicalKey()
		if seen[key] {
			t.Errorf("variant %d collided with a previous key: %q", i, key)
		}
		seen[key] = true
	}
}
