package acd

import (
	"testing"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.ACD() != 0 {
		t.Error("empty accumulator ACD != 0")
	}
	a.Add(3)
	a.Add(0) // zero-hop events count
	a.Add(5)
	if a.Sum != 8 || a.Count != 3 {
		t.Fatalf("sum=%d count=%d", a.Sum, a.Count)
	}
	if got := a.ACD(); got != 8.0/3 {
		t.Errorf("ACD = %f", got)
	}
	a.AddN(2, 4)
	if a.Sum != 16 || a.Count != 7 {
		t.Fatalf("after AddN: sum=%d count=%d", a.Sum, a.Count)
	}
	var b Accumulator
	b.Add(10)
	a.Merge(b)
	if a.Sum != 26 || a.Count != 8 {
		t.Fatalf("after Merge: sum=%d count=%d", a.Sum, a.Count)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func fullGrid(order uint) []geom.Point {
	side := geom.Side(order)
	pts := make([]geom.Point, 0, side*side)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			pts = append(pts, geom.Pt(x, y))
		}
	}
	return pts
}

func TestAssignOrdersAlongCurve(t *testing.T) {
	const order = 3
	pts := fullGrid(order)
	for _, c := range sfc.Extended() {
		a, err := Assign(pts, c, order, 4)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for i := 1; i < a.N(); i++ {
			if c.Index(order, a.Particles[i-1]) >= c.Index(order, a.Particles[i]) {
				t.Fatalf("%s: particles not in curve order at %d", c.Name(), i)
			}
		}
	}
}

func TestAssignRanksMonotoneBalanced(t *testing.T) {
	const order = 4
	r := rng.New(1)
	pts, err := dist.SampleUnique(dist.Uniform, r, order, 100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(pts, sfc.Hilbert, order, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int32]int)
	for i, rk := range a.Ranks {
		if i > 0 && rk < a.Ranks[i-1] {
			t.Fatalf("ranks not monotone at %d", i)
		}
		counts[rk]++
	}
	min, max := 1<<30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("chunk sizes range [%d,%d]", min, max)
	}
}

func TestAssignRankAt(t *testing.T) {
	const order = 4
	r := rng.New(2)
	pts, err := dist.SampleUnique(dist.Normal, r, order, 60)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(pts, sfc.Morton, order, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Particles {
		if got := a.RankAt(p); got != a.Ranks[i] {
			t.Fatalf("RankAt(%v) = %d, want %d", p, got, a.Ranks[i])
		}
	}
	// An unoccupied cell must report -1.
	occupied := make(map[geom.Point]bool)
	for _, p := range pts {
		occupied[p] = true
	}
	side := geom.Side(order)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			p := geom.Pt(x, y)
			if !occupied[p] && a.RankAt(p) != -1 {
				t.Fatalf("empty cell %v has rank %d", p, a.RankAt(p))
			}
		}
	}
}

func TestAssignSparseFallback(t *testing.T) {
	// Order 13 (8192x8192 = 64M cells) exceeds the dense limit; the
	// sparse map path must behave identically.
	const order = 13
	r := rng.New(3)
	pts, err := dist.SampleUnique(dist.Uniform, r, order, 50)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(pts, sfc.Hilbert, order, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.denseRank != nil {
		t.Fatal("expected sparse representation at order 13")
	}
	for i, p := range a.Particles {
		if got := a.RankAt(p); got != a.Ranks[i] {
			t.Fatalf("sparse RankAt(%v) = %d, want %d", p, got, a.Ranks[i])
		}
	}
	if a.RankAt(geom.Pt(0, 0)) != -1 {
		// (0,0) is almost surely unoccupied among 50 of 64M cells; if
		// it is occupied the check above already covered it.
		for _, p := range pts {
			if p == geom.Pt(0, 0) {
				return
			}
		}
		t.Fatal("empty cell lookup on sparse path did not return -1")
	}
}

func TestAssignErrors(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0)}
	if _, err := Assign(pts, sfc.Hilbert, 2, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Assign(nil, sfc.Hilbert, 2, 4); err == nil {
		t.Error("empty particles accepted")
	}
	dup := []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1)}
	if _, err := Assign(dup, sfc.Hilbert, 2, 2); err == nil {
		t.Error("duplicate cells accepted")
	}
}

func TestChunkBounds(t *testing.T) {
	pts := fullGrid(2) // 16 particles
	a, err := Assign(pts, sfc.Hilbert, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		lo, hi := a.ChunkBounds(r)
		if hi-lo != 4 {
			t.Fatalf("chunk %d size %d", r, hi-lo)
		}
		for i := lo; i < hi; i++ {
			if int(a.Ranks[i]) != r {
				t.Fatalf("particle %d in bounds of %d has rank %d", i, r, a.Ranks[i])
			}
		}
	}
}

func TestAssignMoreProcsThanParticles(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 3), geom.Pt(1, 2)}
	a, err := Assign(pts, sfc.Hilbert, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.P != 16 || a.N() != 3 {
		t.Fatalf("P=%d N=%d", a.P, a.N())
	}
	for i := 1; i < a.N(); i++ {
		if a.Ranks[i] <= a.Ranks[i-1] {
			t.Fatal("with p > n, ranks should be strictly increasing")
		}
	}
}

func TestFromOwners(t *testing.T) {
	pts := []geom.Point{geom.Pt(3, 3), geom.Pt(0, 0), geom.Pt(1, 2)}
	ranks := []int32{2, 0, 2} // non-monotone, duplicated rank
	a, err := FromOwners(pts, ranks, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if a.RankAt(p) != ranks[i] {
			t.Fatalf("RankAt(%v) = %d, want %d", p, a.RankAt(p), ranks[i])
		}
	}
	if a.RankAt(geom.Pt(2, 2)) != -1 {
		t.Error("empty cell not -1")
	}
	// Errors.
	if _, err := FromOwners(pts, ranks[:2], 2, 4); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromOwners(pts, []int32{0, 0, 4}, 2, 4); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := FromOwners(nil, nil, 2, 4); err == nil {
		t.Error("empty accepted")
	}
	if _, err := FromOwners(pts, ranks, 2, 0); err == nil {
		t.Error("p=0 accepted")
	}
	dup := []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1)}
	if _, err := FromOwners(dup, []int32{0, 1}, 2, 4); err == nil {
		t.Error("duplicate cells accepted")
	}
}

func TestFromOwnersMatchesAssign(t *testing.T) {
	// Feeding Assign's own output through FromOwners reproduces it.
	const order = 4
	r := rng.New(21)
	pts, err := dist.SampleUnique(dist.Uniform, r, order, 50)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(pts, sfc.Hilbert, order, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromOwners(a.Particles, a.Ranks, order, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if a.RankAt(p) != b.RankAt(p) {
			t.Fatalf("RankAt(%v) differs: %d vs %d", p, a.RankAt(p), b.RankAt(p))
		}
	}
}

func TestSideAndN(t *testing.T) {
	pts := fullGrid(3)
	a, err := Assign(pts, sfc.Gray, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Side() != 8 || a.N() != 64 {
		t.Fatalf("Side=%d N=%d", a.Side(), a.N())
	}
}
