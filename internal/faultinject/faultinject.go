// Package faultinject is a small deterministic fault-injection layer
// for the serving path. Production code calls Check (or CheckCtx) at
// named sites — "resultcache.disk.get", "serve.compute", … — and an
// Injector configured for a site returns an injected error and/or adds
// injected latency there. Everything is deterministic: each site draws
// from its own internal/rng stream derived from (seed, site name), so
// a failing run replays exactly under the same seed and configuration,
// independent of goroutine scheduling at *other* sites.
//
// A nil *Injector is the disabled state: Check on it is a no-op, so
// production structs embed one without nil checks at call sites.
// Every injection increments "faultinject.injected" plus a per-site
// "faultinject.<site>" counter in internal/obs, making injected faults
// visible in /metrics and run manifests next to the degradation
// counters (serve.disk_errors etc.) they are expected to drive.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"sfcacd/internal/obs"
	"sfcacd/internal/rng"
)

// ErrInjected is the error injected when a fault spec does not name
// its own error. Callers distinguish injected failures from organic
// ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault describes what one injection does: sleep Delay (if nonzero),
// then return Err. A latency-only fault has Err == nil; an error-only
// fault has Delay == 0.
type Fault struct {
	// Err is returned by Check when the fault fires; nil injects
	// latency only.
	Err error
	// Delay is slept before returning (CheckCtx aborts the sleep when
	// the context ends first).
	Delay time.Duration
}

// site is one configured injection point.
type site struct {
	prob      float64 // injection probability per check when remaining < 0
	remaining int     // > 0: inject exactly this many more checks; 0: exhausted; < 0: use prob
	fault     Fault
	r         *rng.Rand    // per-site stream; used only for prob decisions
	injected  *obs.Counter // faultinject.<name>
}

// Injector decides per named site whether to inject a fault. Safe for
// concurrent use. The zero state of a nil *Injector never injects.
type Injector struct {
	seed  uint64
	mu    sync.Mutex
	sites map[string]*site
	total *obs.Counter
}

// New returns an Injector with no sites configured. Equal seeds give
// equal per-site decision streams regardless of configuration order.
func New(seed uint64) *Injector {
	return &Injector{
		seed:  seed,
		sites: make(map[string]*site),
		total: obs.GetCounter("faultinject.injected"),
	}
}

// siteSeed derives a per-site seed from the injector seed and the site
// name (FNV-1a), so each site's stream is independent of when the
// site was configured and of draws at other sites.
func siteSeed(seed uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h ^ seed
}

func (in *Injector) newSite(name string) *site {
	return &site{
		remaining: -1,
		r:         rng.New(siteSeed(in.seed, name)),
		injected:  obs.GetCounter("faultinject." + name),
	}
}

// Enable arms a site: every Check there injects f with probability
// prob (1 means always). Reconfiguring a site keeps its rng stream.
func (in *Injector) Enable(name string, prob float64, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s, ok := in.sites[name]
	if !ok {
		s = in.newSite(name)
		in.sites[name] = s
	}
	s.prob, s.remaining, s.fault = prob, -1, f
}

// EnableN arms a site to inject f on exactly the next n checks, then
// go quiet — the deterministic shape crash-safety tests want.
func (in *Injector) EnableN(name string, n int, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s, ok := in.sites[name]
	if !ok {
		s = in.newSite(name)
		in.sites[name] = s
	}
	s.prob, s.remaining, s.fault = 0, n, f
}

// Disable disarms a site.
func (in *Injector) Disable(name string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.sites, name)
}

// decide consumes one decision at the site and returns the fault to
// apply, if any.
func (in *Injector) decide(name string) (Fault, bool) {
	if in == nil {
		return Fault{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s, ok := in.sites[name]
	if !ok {
		return Fault{}, false
	}
	switch {
	case s.remaining > 0:
		s.remaining--
	case s.remaining == 0:
		return Fault{}, false
	default: // probabilistic
		if s.r.Float64() >= s.prob {
			return Fault{}, false
		}
	}
	s.injected.Inc()
	in.total.Inc()
	// Mark the hit on the goroutine's active trace (if any), so a
	// request whose slowness came from an injected fault shows the
	// fault site in its span tree.
	obs.MarkActive("fault." + name)
	return s.fault, true
}

// fire applies f: the injected error defaults to a site-tagged
// ErrInjected when the fault does not carry its own.
func fire(name string, f Fault) error {
	if f.Err != nil {
		return f.Err
	}
	if f.Delay > 0 {
		return nil // latency-only fault
	}
	return fmt.Errorf("%w at %s", ErrInjected, name)
}

// Check consumes one decision at the named site: on injection it
// sleeps the fault's delay and returns its error (nil for a
// latency-only fault). A nil Injector or unconfigured site returns nil
// without any work.
func (in *Injector) Check(name string) error {
	f, ok := in.decide(name)
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	return fire(name, f)
}

// CheckCtx is Check with a context-aware delay: if ctx ends before the
// injected latency elapses, it returns ctx's cause immediately.
func (in *Injector) CheckCtx(ctx context.Context, name string) error {
	f, ok := in.decide(name)
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
	return fire(name, f)
}

// Parse builds an Injector from a comma-separated flag spec,
//
//	site=prob[:delay]
//
// e.g. "resultcache.disk.get=0.1,serve.compute=1:250ms" injects a
// read error on 10% of disk gets and 250ms of latency on every
// computation. A spec without a delay injects ErrInjected; a spec with
// a delay injects latency only (the fault's Err stays nil). prob must
// be in [0,1]; delay is a Go duration. An empty spec returns a
// disabled (nil) injector.
func Parse(spec string, seed uint64) (*Injector, error) {
	if spec == "" {
		return nil, nil
	}
	in := New(seed)
	for _, part := range strings.Split(spec, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("faultinject: bad site spec %q (want site=prob[:delay])", part)
		}
		probStr, delayStr, hasDelay := strings.Cut(rest, ":")
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("faultinject: bad probability in %q (want 0..1)", part)
		}
		var f Fault
		if hasDelay {
			d, err := time.ParseDuration(delayStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: bad delay in %q: %v", part, err)
			}
			f.Delay = d
		}
		in.Enable(name, prob, f)
	}
	return in, nil
}
