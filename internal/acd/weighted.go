package acd

import "fmt"

// This file extends the ACD toward the paper's future-work item (i)
// ("study the impact of data volume ... on the modeling of the ACD
// metric"): communication events can carry byte weights so that the
// metric averages hop distance per transferred byte rather than per
// message.

// WeightedAccumulator tallies communication events weighted by their
// data volume.
type WeightedAccumulator struct {
	// WeightedSum is sum(weight * hops).
	WeightedSum float64
	// Weight is the total transferred volume.
	Weight float64
	// Events counts the messages.
	Events uint64
}

// Add records one communication of the given hop distance carrying the
// given volume.
func (a *WeightedAccumulator) Add(hops int, weight float64) {
	a.WeightedSum += weight * float64(hops)
	a.Weight += weight
	a.Events++
}

// Merge folds another accumulator into this one.
func (a *WeightedAccumulator) Merge(b WeightedAccumulator) {
	a.WeightedSum += b.WeightedSum
	a.Weight += b.Weight
	a.Events += b.Events
}

// ACD returns the volume-weighted average communicated distance:
// sum(w*d)/sum(w). It is 0 when nothing was transferred.
func (a WeightedAccumulator) ACD() float64 {
	if a.Weight == 0 {
		return 0
	}
	return a.WeightedSum / a.Weight
}

// String formats the accumulator.
func (a WeightedAccumulator) String() string {
	return fmt.Sprintf("weighted acd=%.3f (events=%d, volume=%.0f)", a.ACD(), a.Events, a.Weight)
}

// FromUniform converts a plain Accumulator into a weighted one where
// every event carried the same volume.
func FromUniform(acc Accumulator, perEventVolume float64) WeightedAccumulator {
	return WeightedAccumulator{
		WeightedSum: float64(acc.Sum) * perEventVolume,
		Weight:      float64(acc.Count) * perEventVolume,
		Events:      acc.Count,
	}
}

// Combine merges independently computed phases (e.g. NFI events
// carrying particle records and FFI events carrying expansion
// coefficients) into a single volume-weighted ACD for the whole
// application step.
func Combine(phases ...WeightedAccumulator) WeightedAccumulator {
	var total WeightedAccumulator
	for _, p := range phases {
		total.Merge(p)
	}
	return total
}
