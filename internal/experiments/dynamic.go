package experiments

import (
	"context"
	"fmt"

	"sfcacd/internal/acd"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/partition"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// DynamicResult holds the timestep study behind the paper's §VI-A
// remark that "there is no incentive to shift the ordering of
// particles between FMM iterations to reflect the dynamically changing
// particle distribution profile": particles drift between timesteps,
// and the NFI ACD is tracked under two policies — keeping the initial
// assignment (static) versus re-sorting and re-chunking every step
// (reorder).
type DynamicResult struct {
	// Curves are the curve names.
	Curves []string
	// Steps are the timestep indices reported.
	Steps []int
	// Static[c][t] is the ACD at step t when the step-0 assignment is
	// kept.
	Static [][]float64
	// Reorder[c][t] is the ACD when particles are reordered each step.
	Reorder [][]float64
}

// SeriesTables renders the two policies.
func (r DynamicResult) SeriesTables() (static, reorder *tablefmt.SeriesTable) {
	mk := func(title string, cells [][]float64) *tablefmt.SeriesTable {
		st := &tablefmt.SeriesTable{Title: title, XLabel: "step"}
		for _, s := range r.Steps {
			st.X = append(st.X, float64(s))
		}
		for c, name := range r.Curves {
			st.Series = append(st.Series, tablefmt.Series{Name: name, Y: cells[c]})
		}
		return st
	}
	return mk("NFI ACD over timesteps, static assignment", r.Static),
		mk("NFI ACD over timesteps, reordered each step", r.Reorder)
}

// drift moves every particle one random-walk step (each coordinate
// +-1 or 0), skipping moves that leave the grid or collide with an
// occupied cell. It mutates pts in place, preserving uniqueness.
func drift(pts []geom.Point, order uint, r *rng.Rand) {
	side := geom.Side(order)
	occupied := make(map[uint64]bool, len(pts))
	for _, p := range pts {
		occupied[geom.CellID(p, side)] = true
	}
	for i, p := range pts {
		dx := int(r.Uint32n(3)) - 1
		dy := int(r.Uint32n(3)) - 1
		nx, ny := int(p.X)+dx, int(p.Y)+dy
		if (dx == 0 && dy == 0) || !geom.InBounds(nx, ny, side) {
			continue
		}
		q := geom.Pt(uint32(nx), uint32(ny))
		if occupied[geom.CellID(q, side)] {
			continue
		}
		delete(occupied, geom.CellID(p, side))
		occupied[geom.CellID(q, side)] = true
		pts[i] = q
	}
}

// RunDynamic simulates `steps` drift timesteps and reports the NFI ACD
// per curve under the static and reorder policies on a torus.
func RunDynamic(ctx context.Context, p Params, steps int) (DynamicResult, error) {
	if err := p.Validate(); err != nil {
		return DynamicResult{}, err
	}
	if steps < 1 {
		return DynamicResult{}, fmt.Errorf("experiments: need at least 1 step")
	}
	curves := sfc.All()
	res := DynamicResult{
		Curves:  curveNames(curves),
		Static:  zeroRect(len(curves), steps+1),
		Reorder: zeroRect(len(curves), steps+1),
	}
	for s := 0; s <= steps; s++ {
		res.Steps = append(res.Steps, s)
	}
	pts, err := samplePoints(p.sampler(), p, 0)
	if err != nil {
		return DynamicResult{}, err
	}
	driftRand := rng.New(p.Seed ^ 0xD1F7)
	nc := len(curves)
	pool := sweepPool(p.Workers, nc)
	inner := innerWorkers(p.Workers, pool)
	// Remember each particle's initial owner per curve, one sweep cell
	// per curve. The particle identity is its index in pts; Assign
	// reorders, so map initial ranks back to input order through the
	// curve sort.
	initialRanks := make([][]int32, nc)
	if err := runCells(ctx, pool, nc, func(c int) error {
		perm := sfc.SortPoints(curves[c], p.Order, pts)
		ranks := make([]int32, len(pts))
		for sorted, orig := range perm {
			ranks[orig] = int32(partition.ChunkOf(sorted, len(pts), p.P()))
		}
		initialRanks[c] = ranks
		return nil
	}); err != nil {
		return DynamicResult{}, err
	}
	// Steps are inherently sequential (each drifts the previous step's
	// positions), but within a step the curves are independent cells
	// reading the same frozen positions.
	for step := 0; step <= steps; step++ {
		if step > 0 {
			drift(pts, p.Order, driftRand)
		}
		if err := runCells(ctx, pool, nc, func(c int) error {
			curve := curves[c]
			torus := topology.NewTorus(p.ProcOrder, curve)
			opts := fmmmodel.NFIOptions{
				Radius: p.Radius, Metric: geom.MetricChebyshev, Workers: inner,
			}
			// Static policy: initial owners, current positions.
			static, err := acd.FromOwners(pts, initialRanks[c], p.Order, p.P())
			if err != nil {
				return err
			}
			res.Static[c][step] = fmmmodel.NFI(static, torus, opts).ACD()
			static.Release()
			// Reorder policy: fresh assignment from current positions.
			fresh, err := acd.Assign(pts, curve, p.Order, p.P())
			if err != nil {
				return err
			}
			res.Reorder[c][step] = fmmmodel.NFI(fresh, torus, opts).ACD()
			fresh.Release()
			return nil
		}); err != nil {
			return DynamicResult{}, err
		}
	}
	return res, nil
}
