package sfc

import (
	"testing"

	"sfcacd/internal/geom"
)

func TestMooreRoundTrip(t *testing.T) {
	for order := uint(0); order <= 5; order++ {
		n := geom.Cells(order)
		seen := make(map[geom.Point]bool, n)
		for d := uint64(0); d < n; d++ {
			p := Moore.Point(order, d)
			if seen[p] {
				t.Fatalf("order %d: cell %v visited twice", order, p)
			}
			seen[p] = true
			if got := Moore.Index(order, p); got != d {
				t.Fatalf("order %d: Index(Point(%d)) = %d", order, d, got)
			}
		}
	}
}

func TestMooreUnitSteps(t *testing.T) {
	for order := uint(1); order <= 6; order++ {
		prev := Moore.Point(order, 0)
		for d := uint64(1); d < geom.Cells(order); d++ {
			p := Moore.Point(order, d)
			if geom.Manhattan(prev, p) != 1 {
				t.Fatalf("order %d: step %d jumps from %v to %v", order, d, prev, p)
			}
			prev = p
		}
	}
}

func TestMooreIsClosed(t *testing.T) {
	// The defining Moore property: the loop closes — the last cell is
	// adjacent to the first.
	for order := uint(1); order <= 6; order++ {
		first := Moore.Point(order, 0)
		last := Moore.Point(order, geom.Cells(order)-1)
		if geom.Manhattan(first, last) != 1 {
			t.Fatalf("order %d: endpoints %v and %v not adjacent", order, first, last)
		}
	}
}

func TestMooreName(t *testing.T) {
	if Moore.Name() != "moore" {
		t.Errorf("name %q", Moore.Name())
	}
	c, err := ByName("moore")
	if err != nil || c.Name() != "moore" {
		t.Errorf("ByName(moore) = %v, %v", c, err)
	}
}

func TestMoorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-grid point accepted")
		}
	}()
	Moore.Index(2, geom.Pt(4, 0))
}
