package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRunClustering(t *testing.T) {
	res, err := RunClustering(context.Background(), 7, []uint32{4, 8}, 500, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 || len(res.QuerySides) != 2 {
		t.Fatalf("bad shape")
	}
	// The classical ordering (Jagadish 1990): Hilbert needs clearly
	// fewer clusters than the Z-curve and the Gray order. (Row-major is
	// omitted: an s x s window is exactly s row-runs, which ties the
	// Hilbert average for square queries — the row-major pathology
	// shows up for elongated queries and under the other metrics.)
	const hilbert, morton, gray = 0, 1, 2
	for q := range res.QuerySides {
		if res.Avg[hilbert][q] >= res.Avg[morton][q] {
			t.Errorf("query %d: hilbert %f >= morton %f",
				res.QuerySides[q], res.Avg[hilbert][q], res.Avg[morton][q])
		}
		if res.Avg[hilbert][q] >= res.Avg[gray][q] {
			t.Errorf("query %d: hilbert %f >= gray %f",
				res.QuerySides[q], res.Avg[hilbert][q], res.Avg[gray][q])
		}
	}
	// Larger queries touch more clusters.
	for c := range res.Curves {
		if res.Avg[c][1] <= res.Avg[c][0] {
			t.Errorf("%s: clusters not increasing with query size", res.Curves[c])
		}
	}
	// Deterministic.
	res2, err := RunClustering(context.Background(), 7, []uint32{4, 8}, 500, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := range res.Avg {
		for q := range res.Avg[c] {
			if res.Avg[c][q] != res2.Avg[c][q] {
				t.Fatal("RunClustering not deterministic")
			}
		}
	}
	var b strings.Builder
	if err := res.SeriesTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Clustering metric") {
		t.Error("title missing")
	}
	if _, err := RunClustering(context.Background(), 7, nil, 10, 1, 0); err == nil {
		t.Error("empty query sides accepted")
	}
	if _, err := RunClustering(context.Background(), 0, []uint32{2}, 10, 1, 0); err == nil {
		t.Error("order 0 accepted")
	}
}

// TestMetricsDisagree locks in the paper's central narrative: the
// Hilbert curve wins the clustering metric but loses ANNS to the
// Z-curve — no single proximity metric tells the whole story, which is
// what motivates the application-aware ACD.
func TestMetricsDisagree(t *testing.T) {
	cluster, err := RunClustering(context.Background(), 7, []uint32{8}, 2000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	annsRes, err := RunFig5(context.Background(), 7, 7, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const hilbert, morton = 0, 1
	if cluster.Avg[hilbert][0] >= cluster.Avg[morton][0] {
		t.Errorf("clustering: hilbert %f >= morton %f",
			cluster.Avg[hilbert][0], cluster.Avg[morton][0])
	}
	if annsRes.ANNS[hilbert][0] <= annsRes.ANNS[morton][0] {
		t.Errorf("ANNS: hilbert %f <= morton %f",
			annsRes.ANNS[hilbert][0], annsRes.ANNS[morton][0])
	}
}
