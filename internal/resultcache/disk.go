package resultcache

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sfcacd/internal/faultinject"
	"sfcacd/internal/obs"
)

// Fault-injection sites inside the disk store. Tests and the daemon's
// -faults flag key on these names; an unconfigured or nil injector
// makes every site a no-op.
const (
	// SiteDiskGet fails the read in Get.
	SiteDiskGet = "resultcache.disk.get"
	// SiteDiskPut fails the temp-file write in Put.
	SiteDiskPut = "resultcache.disk.put"
	// SiteDiskRename fails Put after the temp file is durably written
	// but before the rename — the crash-between-write-and-publish
	// window the janitor exists for. The temp file is deliberately
	// left behind, exactly as a real crash would leave it.
	SiteDiskRename = "resultcache.disk.rename"
	// SiteDiskSync fails the fsync of the temp file.
	SiteDiskSync = "resultcache.disk.sync"
)

// quarantineSuffix is appended to an entry file that failed decode or
// key verification; quarantined files are never read again (they no
// longer match the *.json entry glob) but stay on disk for forensics.
const quarantineSuffix = ".quarantine"

// DiskStore is a content-addressed directory store: one JSON file per
// entry at <dir>/<hex[:2]>/<hex>.json. It lets acdbench warm a cache
// the daemon then serves from (and vice versa), and persists results
// across restarts.
//
// Durability: Put writes a temp file, fsyncs it, renames it over the
// entry path, and fsyncs the parent directory, so after Put returns
// the entry survives a crash or power loss; a crash mid-Put leaves at
// worst an orphaned entry-*.tmp file that the janitor in OpenDisk
// removes on the next open, never a truncated or partially visible
// entry. Entries that nonetheless fail decode or key verification
// (external corruption, a foreign file) are quarantined — renamed
// aside with a ".quarantine" suffix — on first contact, so one bad
// file costs one error, not one error per lookup.
type DiskStore struct {
	dir    string
	faults *faultinject.Injector

	quarantined *obs.Counter // entries renamed aside as undecodable/mismatched
	tmpSwept    *obs.Counter // orphaned temp files removed by the janitor
}

// OpenDisk creates (if needed) and opens a disk store rooted at dir,
// then runs the janitor: orphaned entry-*.tmp files left by a crash
// mid-Put are removed (counted in resultcache.disk_tmp_swept). The
// janitor assumes no other process is writing the store at open time.
func OpenDisk(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: opening disk store: %w", err)
	}
	d := &DiskStore{
		dir:         dir,
		quarantined: obs.GetCounter("resultcache.disk_quarantined"),
		tmpSwept:    obs.GetCounter("resultcache.disk_tmp_swept"),
	}
	if err := d.sweepTmp(); err != nil {
		return nil, fmt.Errorf("resultcache: janitor: %w", err)
	}
	return d, nil
}

// SetFaults installs a fault injector on the store's Get/Put sites
// (nil disables injection). Not safe to call concurrently with store
// operations; set it right after OpenDisk.
func (d *DiskStore) SetFaults(in *faultinject.Injector) { d.faults = in }

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// path returns the entry file of k.
func (d *DiskStore) path(k Key) string {
	hexKey := k.String()
	return filepath.Join(d.dir, hexKey[:2], hexKey+".json")
}

// sweepTmp removes every orphaned temp file in the store's shard
// directories.
func (d *DiskStore) sweepTmp() error {
	orphans, err := filepath.Glob(filepath.Join(d.dir, "*", "entry-*.tmp"))
	if err != nil {
		return err
	}
	for _, orphan := range orphans {
		if err := os.Remove(orphan); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		d.tmpSwept.Inc()
	}
	return nil
}

// quarantine renames a bad entry file aside so it is never re-read;
// best effort — a failed rename leaves the file where it was.
func (d *DiskStore) quarantine(path string) {
	if err := os.Rename(path, path+quarantineSuffix); err == nil {
		d.quarantined.Inc()
	}
}

// Get loads the entry stored under k. A missing entry returns ok ==
// false with a nil error. A present but undecodable or key-mismatched
// entry is quarantined (renamed aside, so the next Get misses cleanly)
// and returns the error this one time.
func (d *DiskStore) Get(k Key) (Entry, bool, error) {
	if err := d.faults.Check(SiteDiskGet); err != nil {
		return Entry{}, false, err
	}
	path := d.path(k)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return Entry{}, false, nil
	}
	if err != nil {
		return Entry{}, false, err
	}
	e, err := decodeEntry(data, k)
	if err != nil {
		d.quarantine(path)
		return Entry{}, false, err
	}
	return e, true, nil
}

// decodeEntry parses an entry file's bytes and verifies its
// self-describing key against the key it was looked up under.
func decodeEntry(data []byte, want Key) (Entry, error) {
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, fmt.Errorf("resultcache: corrupt entry %s: %w", want, err)
	}
	if e.Key != want {
		return Entry{}, fmt.Errorf("resultcache: entry %s stored under key %s", e.Key, want)
	}
	return e, nil
}

// Put stores e under e.Key, atomically and durably replacing any
// existing entry: the temp file is fsynced before the rename and the
// parent directory after it, so a crash at any point leaves either the
// old entry or the new one, never a mix — plus at worst an orphaned
// temp file for the janitor.
func (d *DiskStore) Put(e Entry) error {
	path := d.path(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "entry-*.tmp")
	if err != nil {
		return err
	}
	if err := d.writeTmp(tmp, data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := d.faults.Check(SiteDiskRename); err != nil {
		return err // simulated crash: leave the temp file for the janitor
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// writeTmp writes, permissions, and fsyncs the temp file. CreateTemp
// opens files 0600; entries are chmodded to 0644 so a cache warmed by
// acdbench under one user stays readable by a daemon running as
// another.
func (d *DiskStore) writeTmp(tmp *os.File, data []byte) error {
	if err := d.faults.Check(SiteDiskPut); err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := d.faults.Check(SiteDiskSync); err != nil {
		return err
	}
	return tmp.Sync()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// VerifyReport summarizes a DiskStore.Verify walk.
type VerifyReport struct {
	// Entries is the number of entry files that decoded and
	// key-verified.
	Entries int
	// Bad is the number of entry files quarantined by this walk.
	Bad int
	// BadPaths lists the files quarantined by this walk (their
	// original, pre-quarantine paths), sorted.
	BadPaths []string
	// TmpSwept is the number of orphaned temp files removed by this
	// walk.
	TmpSwept int
}

// Verify walks every entry in the store, checking that each file
// decodes and that its self-describing key matches both the filename
// and the shard directory. Bad entries are quarantined exactly as a
// Get would quarantine them; orphaned temp files are swept. It is the
// full-store form of the open-time janitor, exposed as
// acdbench -cache-verify.
func (d *DiskStore) Verify() (VerifyReport, error) {
	var rep VerifyReport
	sweptBefore := d.tmpSwept.Value()
	if err := d.sweepTmp(); err != nil {
		return rep, err
	}
	rep.TmpSwept = int(d.tmpSwept.Value() - sweptBefore)

	files, err := filepath.Glob(filepath.Join(d.dir, "*", "*.json"))
	if err != nil {
		return rep, err
	}
	for _, path := range files {
		var want Key
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		bad := want.parseHex(name) != nil ||
			filepath.Base(filepath.Dir(path)) != name[:2]
		if !bad {
			data, err := os.ReadFile(path)
			if err != nil {
				return rep, err
			}
			_, err = decodeEntry(data, want)
			bad = err != nil
		}
		if bad {
			d.quarantine(path)
			rep.Bad++
			rep.BadPaths = append(rep.BadPaths, path)
			continue
		}
		rep.Entries++
	}
	sort.Strings(rep.BadPaths)
	return rep, nil
}

// parseHex fills k from its lowercase hex form.
func (k *Key) parseHex(s string) error {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(k) {
		return fmt.Errorf("resultcache: bad key %q", s)
	}
	copy(k[:], raw)
	return nil
}
